//! The `Scenario` front door: one composable description of a
//! paper-style experiment, many execution strategies.
//!
//! Every experiment in the reproduction has the same shape — *pick a
//! detectable object, a workload, and a fault model, then run it under some
//! scheduler*. Historically each scheduler was its own free function with
//! its own configuration struct (`run_sim`, `explore`, `census_drive`,
//! `census_bfs`, `find_doubly_perturbing_witness`); [`Scenario`] replaces
//! the five entry points with one builder that lowers onto the shared
//! [`Driver`](crate::Driver) engine:
//!
//! ```
//! use harness::{CrashModel, Scenario, Workload};
//! use detectable::ObjectKind;
//!
//! let verdict = Scenario::object(ObjectKind::Cas)
//!     .processes(3)
//!     .workload(Workload::mixed(3))
//!     .faults(CrashModel::storms(0.05))
//!     .simulate(&harness::SimConfig {
//!         seed: 7,
//!         ..Default::default()
//!     });
//! verdict.assert_passed();
//! ```
//!
//! Terminal runners — [`simulate`](Scenario::simulate) (randomized
//! crash-storm simulation), [`explore`](Scenario::explore) (exhaustive
//! interleaving + crash-point search), [`census`](Scenario::census)
//! (Theorem 1 configuration counting), [`perturb`](Scenario::perturb)
//! (Definition 3 witness search) and [`space`](Scenario::space) (NVM bit
//! accounting) — all return the same [`Verdict`], so results from different
//! strategies aggregate uniformly.
//!
//! [`Sweep`] is the batch layer on top: it fans a scenario across seed
//! ranges, object kinds and crash probabilities on `std::thread` workers
//! and aggregates the per-cell verdicts into one deterministic
//! [`SweepReport`] — cell order is construction order (object axis outer,
//! seeds inner) regardless of the worker count, so the aggregate table of a
//! 1000-seed crash-storm sweep is byte-identical whether it ran on one
//! thread or eight.

use std::ops::Range;
use std::sync::Arc;

/// A user factory building the scenario's object into a layout.
type ObjectFactory = Arc<dyn Fn(&mut LayoutBuilder) -> Box<dyn RecoverableObject> + Send + Sync>;

use detectable::{
    DetectableCas, DetectableCounter, DetectableFaa, DetectableQueue, DetectableRegister,
    DetectableSwap, DetectableTas, MaxRegister, ObjectKind, RecoverableObject,
};
use nvm::{CacheMode, CrashPolicy, LayoutBuilder, SimMemory};

use crate::census::{census_bfs_engine, census_drive_engine, BfsConfig};
use crate::explore::{explore_engine, ExploreConfig, OpSource, SymmetryMode};
use crate::external::census_bfs_external_engine;
use crate::linearize::check_execution;
use crate::perturb::{validate_witness_on_impl, witness_search, PerturbWitness};
use crate::sched::SchedStats;
use crate::sim::{sim_engine, SimConfig, SimReport};
use crate::workload::{ResolvedWorkload, Workload};

/// How (and whether) crashes strike, and what the caller does about `fail`
/// verdicts — the scenario-level fault model shared by the randomized
/// simulator (which uses [`crash_prob`](CrashModel::crash_prob)) and the
/// exhaustive explorer (which uses [`max_crashes`](CrashModel::max_crashes)).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CrashModel {
    /// Probability that a randomized scheduler step is a system-wide crash.
    pub crash_prob: f64,
    /// Maximum system-wide crashes per explored execution.
    pub max_crashes: usize,
    /// What happens to dirty cache lines at a crash.
    pub policy: CrashPolicy,
    /// Re-invoke operations whose recovery verdict was `fail`.
    pub retry_on_fail: bool,
    /// Fail-retry budget (per operation in simulation, per process in
    /// exploration — mirroring the engines' historical budgets).
    pub max_retries: usize,
}

impl CrashModel {
    /// No crashes at all.
    pub fn none() -> CrashModel {
        CrashModel {
            crash_prob: 0.0,
            max_crashes: 0,
            policy: CrashPolicy::DropAll,
            retry_on_fail: true,
            max_retries: 3,
        }
    }

    /// Randomized crash storms: each scheduler step crashes the system with
    /// probability `crash_prob` (adversarial `DropAll` line loss, retry on
    /// fail with a budget of 3 — the soak defaults).
    pub fn storms(crash_prob: f64) -> CrashModel {
        CrashModel {
            crash_prob,
            max_crashes: 1,
            ..CrashModel::none()
        }
    }

    /// Exhaustive crash placement: up to `max_crashes` crashes anywhere
    /// (the explorer defaults: retry on fail, per-process budget of 2).
    pub fn exhaustive(max_crashes: usize) -> CrashModel {
        CrashModel {
            crash_prob: 0.0,
            max_crashes,
            max_retries: 2,
            ..CrashModel::none()
        }
    }

    /// Replaces the crash-time cache-line policy.
    pub fn policy(mut self, policy: CrashPolicy) -> CrashModel {
        self.policy = policy;
        self
    }

    /// Replaces the fail-retry budget.
    pub fn retries(mut self, max_retries: usize) -> CrashModel {
        self.max_retries = max_retries;
        self
    }

    /// Disables re-invocation after `fail` verdicts.
    pub fn no_retry(mut self) -> CrashModel {
        self.retry_on_fail = false;
        self
    }

    /// Replaces the per-step crash probability.
    pub fn prob(mut self, crash_prob: f64) -> CrashModel {
        self.crash_prob = crash_prob;
        self
    }
}

/// How the scenario obtains its object: a paper-default implementation per
/// [`ObjectKind`], or an arbitrary user factory.
#[derive(Clone)]
enum ObjectSpec {
    Kind(ObjectKind),
    Custom(ObjectFactory),
}

/// Builds the paper's default implementation of `kind` for `n` processes
/// into `b` (Algorithm 1 for registers, Algorithm 2 for CAS, Algorithm 3 for
/// max registers, the composed objects otherwise). `queue_capacity` only
/// affects [`ObjectKind::Queue`].
///
/// This is the same constructor mapping [`Scenario`] uses internally; it is
/// public so out-of-process runners (the crash subsystem's worker re-exec,
/// the soak binary) can rebuild the identical world from an [`ObjectKind`]
/// alone.
pub fn build_kind(
    kind: ObjectKind,
    b: &mut LayoutBuilder,
    n: u32,
    queue_capacity: u32,
) -> Box<dyn RecoverableObject> {
    match kind {
        ObjectKind::Register => Box::new(DetectableRegister::new(b, n, 0)),
        ObjectKind::Cas => Box::new(DetectableCas::new(b, n, 0)),
        ObjectKind::MaxRegister => Box::new(MaxRegister::new(b, n)),
        ObjectKind::Counter => Box::new(DetectableCounter::new(b, n)),
        ObjectKind::Faa => Box::new(DetectableFaa::new(b, n)),
        ObjectKind::Swap => Box::new(DetectableSwap::new(b, n)),
        ObjectKind::Tas => Box::new(DetectableTas::new(b, n)),
        ObjectKind::Queue => Box::new(DetectableQueue::new(b, n, queue_capacity)),
    }
}

/// A composable experiment description: object + memory model + workload +
/// fault model, executable under any of the terminal runners. See the
/// [module docs](self) for an overview and `EXPERIMENTS.md` for one
/// scenario per paper experiment.
#[derive(Clone)]
pub struct Scenario {
    object: ObjectSpec,
    processes: u32,
    queue_capacity: u32,
    memory: Option<CacheMode>,
    faults: Option<CrashModel>,
    workload: Option<Workload>,
    workload_seed: u64,
    label: Option<String>,
}

impl Scenario {
    /// A scenario over the paper's default implementation of `kind`
    /// (Algorithm 1 for registers, Algorithm 2 for CAS, Algorithm 3 for max
    /// registers, the composed objects otherwise), with 2 processes.
    pub fn object(kind: ObjectKind) -> Scenario {
        Scenario {
            object: ObjectSpec::Kind(kind),
            processes: 2,
            queue_capacity: 128,
            memory: None,
            faults: None,
            workload: None,
            workload_seed: 0,
            label: None,
        }
    }

    /// A scenario over a custom [`RecoverableObject`] built by `factory`
    /// (baselines, adversarial wrappers, adapters…). The factory must build
    /// an object for at least [`processes`](Scenario::processes) processes.
    pub fn custom(
        factory: impl Fn(&mut LayoutBuilder) -> Box<dyn RecoverableObject> + Send + Sync + 'static,
    ) -> Scenario {
        Scenario {
            object: ObjectSpec::Custom(Arc::new(factory)),
            processes: 2,
            queue_capacity: 128,
            memory: None,
            faults: None,
            workload: None,
            workload_seed: 0,
            label: None,
        }
    }

    /// Sets the process count (kind-built objects only; custom factories fix
    /// their own count). Default: 2.
    pub fn processes(mut self, n: u32) -> Scenario {
        self.processes = n;
        self
    }

    /// Sets the queue capacity used when building [`ObjectKind::Queue`]
    /// worlds. Default: 128.
    pub fn queue_capacity(mut self, capacity: u32) -> Scenario {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the persistence model the simulated memory follows. Default:
    /// the runner config's mode for [`simulate`](Scenario::simulate),
    /// [`CacheMode::PrivateCache`] elsewhere.
    pub fn memory(mut self, mode: CacheMode) -> Scenario {
        self.memory = Some(mode);
        self
    }

    /// Sets the fault model. When set it overrides the crash-related fields
    /// of the runner configs; when unset the runner configs apply untouched.
    pub fn faults(mut self, faults: CrashModel) -> Scenario {
        self.faults = Some(faults);
        self
    }

    /// Sets the workload. Default: [`Workload::mixed`] over the runner's
    /// operation count.
    pub fn workload(mut self, workload: Workload) -> Scenario {
        self.workload = Some(workload);
        self
    }

    /// Sets the seed used to resolve [`Workload::Random`] draws for the
    /// non-simulation runners ([`explore`](Scenario::explore),
    /// [`census`](Scenario::census)) and for [`Sweep`] seed axes on those
    /// runners. [`simulate`](Scenario::simulate) resolves with its own run
    /// seed instead, so equal simulation seeds always give equal draws.
    /// Default: 0. No effect on deterministic workload variants.
    pub fn workload_seed(mut self, seed: u64) -> Scenario {
        self.workload_seed = seed;
        self
    }

    /// Overrides the object name reported in verdicts and sweep tables
    /// (useful for distinguishing baseline variants).
    pub fn label(mut self, label: impl Into<String>) -> Scenario {
        self.label = Some(label.into());
        self
    }

    /// Builds the scenario's `(object, memory)` world, honoring the
    /// scenario memory mode (private-cache if unset). For bespoke
    /// measurement loops that want the scenario vocabulary but their own
    /// driver schedule.
    pub fn build(&self) -> (Box<dyn RecoverableObject>, SimMemory) {
        let (obj, mem, _, _) = self.construct(self.memory.unwrap_or_default());
        (obj, mem)
    }

    fn make(&self, b: &mut LayoutBuilder) -> Box<dyn RecoverableObject> {
        match &self.object {
            ObjectSpec::Custom(f) => f(b),
            ObjectSpec::Kind(kind) => build_kind(*kind, b, self.processes, self.queue_capacity),
        }
    }

    /// Builds object + memory and captures the layout's logical bit counts.
    fn construct(&self, mode: CacheMode) -> (Box<dyn RecoverableObject>, SimMemory, u64, u64) {
        let mut b = LayoutBuilder::new();
        let obj = self.make(&mut b);
        let layout = b.finish();
        let (shared_bits, private_bits) = (layout.shared_bits(), layout.private_bits());
        (
            obj,
            SimMemory::with_mode(layout, mode),
            shared_bits,
            private_bits,
        )
    }

    fn display_name(&self, obj: &dyn RecoverableObject) -> String {
        self.label.clone().unwrap_or_else(|| obj.name().to_string())
    }

    fn workload_or_default(&self, ops_per_process: usize) -> Workload {
        self.workload
            .clone()
            .unwrap_or(Workload::Mixed { ops_per_process })
    }

    /// The runner-effective simulation config: scenario faults and memory
    /// mode override the corresponding config fields when set.
    fn effective_sim(&self, cfg: &SimConfig) -> SimConfig {
        let mut eff = cfg.clone();
        if let Some(f) = self.faults {
            eff.crash_prob = f.crash_prob;
            eff.crash_policy = f.policy;
            eff.retry_on_fail = f.retry_on_fail;
            eff.max_retries = f.max_retries;
        }
        if let Some(m) = self.memory {
            eff.cache_mode = m;
        }
        eff
    }

    /// The runner-effective exploration config (same precedence rule).
    /// A `parallelism` of 0 (the [`ExploreConfig::default`]) resolves to
    /// the host's available parallelism here.
    fn effective_explore(&self, cfg: &ExploreConfig) -> ExploreConfig {
        let mut eff = cfg.clone();
        if let Some(f) = self.faults {
            eff.max_crashes = f.max_crashes;
            eff.crash_policy = f.policy;
            eff.retry_on_fail = f.retry_on_fail;
            eff.max_retries = f.max_retries;
        }
        eff.parallelism = resolve_parallelism(eff.parallelism);
        eff
    }

    /// Runs the seeded randomized crash-injection simulator and checks the
    /// recorded history, returning the raw [`SimReport`] alongside nothing —
    /// use this when the history itself is needed (equivalence tests,
    /// debugging); [`simulate`](Scenario::simulate) wraps it.
    pub fn simulate_report(&self, cfg: &SimConfig) -> SimReport {
        let eff = self.effective_sim(cfg);
        let (obj, mem, _, _) = self.construct(eff.cache_mode);
        let plan = self
            .workload_or_default(eff.ops_per_process)
            .resolve(obj.kind(), obj.processes(), eff.seed)
            .into_per_process(obj.processes());
        sim_engine(&*obj, &mem, &eff, &plan)
    }

    /// Runs one seeded randomized simulation with crash injection (the old
    /// `run_sim` strategy) and checks the recorded history for durable
    /// linearizability + detectability.
    ///
    /// Scenario precedence: [`faults`](Scenario::faults) overrides the
    /// crash/retry fields of `cfg`, [`memory`](Scenario::memory) overrides
    /// `cfg.cache_mode`; `cfg.seed`, `cfg.max_steps` and (for the default
    /// workload) `cfg.ops_per_process` always apply. A
    /// [`Workload::Script`] runs as per-process subsequences here — only
    /// the randomized scheduler decides inter-process order.
    pub fn simulate(&self, cfg: &SimConfig) -> Verdict {
        let eff = self.effective_sim(cfg);
        let (obj, mem, shared_bits, private_bits) = self.construct(eff.cache_mode);
        let plan = self
            .workload_or_default(eff.ops_per_process)
            .resolve(obj.kind(), obj.processes(), eff.seed)
            .into_per_process(obj.processes());
        let report = sim_engine(&*obj, &mem, &eff, &plan);
        let violation = check_execution(&*obj, &report.history).err();
        Verdict {
            object: self.display_name(&*obj),
            kind: obj.kind(),
            mode: RunMode::Simulate,
            detectable: obj.detectable(),
            passed: violation.is_none(),
            linearizable: Some(violation.is_none()),
            bound_met: None,
            violation: violation.map(|v| v.to_string()),
            witness: None,
            stats: RunStats {
                executions: 1,
                resolved_ops: report.resolved_ops as u64,
                crashes: report.crashes,
                recovered_ok: report.recovered_ok,
                recovered_failed: report.recovered_failed,
                steps: report.steps as u64,
                persists: mem.stats().persists,
                shared_bits,
                private_bits,
                ..RunStats::default()
            },
        }
    }

    /// Exhaustively explores every interleaving and crash placement of the
    /// workload (the old `explore` strategy), checking each complete
    /// execution.
    ///
    /// [`faults`](Scenario::faults) overrides the crash/retry fields of
    /// `cfg`; `cfg.max_leaves`, `cfg.prune` and `cfg.parallelism` always
    /// apply. A `cfg.symmetry` of [`SymmetryMode::Auto`] (the default)
    /// resolves here: symmetry reduction is enabled exactly when the
    /// workload is an alphabet-generated family
    /// ([`Workload::alphabet_generated`]) whose resolved lists contain a
    /// nontrivial process orbit ([`ResolvedWorkload::symmetric`]) — the
    /// engine still falls back silently if the object or layout cannot
    /// express permutation.
    pub fn explore(&self, cfg: &ExploreConfig) -> Verdict {
        let mut eff = self.effective_explore(cfg);
        let (obj, mem, shared_bits, private_bits) = self.construct(self.memory.unwrap_or_default());
        let workload = self.workload_or_default(2);
        let resolved = workload.resolve(obj.kind(), obj.processes(), self.workload_seed);
        if eff.symmetry == SymmetryMode::Auto {
            eff.symmetry = if workload.alphabet_generated() && resolved.symmetric() {
                SymmetryMode::On
            } else {
                SymmetryMode::Off
            };
        }
        let out = match &resolved {
            ResolvedWorkload::PerProcess(lists) => {
                explore_engine(&*obj, &mem, OpSource::PerProcess(lists), &eff)
            }
            ResolvedWorkload::Script(ops) => {
                explore_engine(&*obj, &mem, OpSource::Script(ops), &eff)
            }
        };
        Verdict {
            object: self.display_name(&*obj),
            kind: obj.kind(),
            mode: RunMode::Explore,
            detectable: obj.detectable(),
            passed: out.violation.is_none(),
            linearizable: Some(out.violation.is_none()),
            bound_met: None,
            violation: out.violation.map(|v| v.to_string()),
            witness: None,
            stats: RunStats {
                executions: out.leaves as u64,
                distinct_configs: out.unique_nodes as u64,
                truncated: out.truncated,
                shared_bits,
                private_bits,
                sched: out.sched,
                ..RunStats::default()
            },
        }
    }

    /// A failed verdict for an unrunnable scenario description: `passed`
    /// false with the problem rendered into [`Verdict::violation`], so
    /// sweeps and tables surface the misconfiguration instead of silently
    /// reporting a degenerate run (or panicking mid-engine).
    fn config_error(
        &self,
        obj: &dyn RecoverableObject,
        mode: RunMode,
        message: String,
        shared_bits: u64,
        private_bits: u64,
    ) -> Verdict {
        Verdict {
            object: self.display_name(obj),
            kind: obj.kind(),
            mode,
            detectable: obj.detectable(),
            passed: false,
            linearizable: None,
            bound_met: None,
            violation: Some(message),
            witness: None,
            stats: RunStats {
                shared_bits,
                private_bits,
                ..RunStats::default()
            },
        }
    }

    /// Counts reachable shared-memory configurations (the Theorem 1
    /// experiment): a [`Workload::Script`] is solo-driven operation by
    /// operation (the old `census_drive`, e.g. over
    /// [`gray_code_cas_ops`](crate::census::gray_code_cas_ops)); any other
    /// workload breadth-first-explores every interleaving of its operation
    /// alphabet under `cfg` (the old `census_bfs`).
    ///
    /// [`Verdict::bound_met`] reports the `2^N − 1` lower bound for
    /// detectable CAS scenarios — the kind Theorem 1 speaks about — and is
    /// `None` otherwise. A census whose coverage was truncated (the
    /// [`BfsConfig::max_states`] cap, or a stalled solo drive) sets
    /// [`RunStats::truncated`]; when such a run also misses the bound the
    /// verdict fails but [`Verdict::violation`] says the miss is a coverage
    /// artifact, distinguishing it from a conclusive bound failure
    /// (`truncated == false`).
    pub fn census(&self, cfg: &BfsConfig) -> Verdict {
        let (obj, mem, shared_bits, private_bits) = self.construct(self.memory.unwrap_or_default());
        let workload = self.workload_or_default(2);
        let report = match workload.resolve(obj.kind(), obj.processes(), self.workload_seed) {
            ResolvedWorkload::Script(ops) if ops.is_empty() => {
                return self.config_error(
                    &*obj,
                    RunMode::Census,
                    "configuration error: the script workload is empty — a census needs at \
                     least one operation to drive"
                        .into(),
                    shared_bits,
                    private_bits,
                );
            }
            ResolvedWorkload::Script(ops) => census_drive_engine(&*obj, &mem, &ops),
            ResolvedWorkload::PerProcess(_) => {
                let alphabet = workload.alphabet(obj.kind());
                if alphabet.is_empty() {
                    return self.config_error(
                        &*obj,
                        RunMode::Census,
                        "configuration error: the workload resolves to an empty operation \
                         alphabet — the BFS census would count a zero-op world; give the \
                         workload at least one operation"
                            .into(),
                        shared_bits,
                        private_bits,
                    );
                }
                // A `parallelism` of 0 (the config default) resolves to
                // the host's available parallelism at this layer; the
                // engines themselves treat 0 as sequential.
                let mut eff = cfg.clone();
                eff.parallelism = resolve_parallelism(cfg.parallelism);
                if cfg.disk_dir.is_some() && obj.decodable() {
                    // Disk tier requested and the object can rebuild its
                    // machines from their encodings: spill the frontier.
                    census_bfs_external_engine(&*obj, &mem, &alphabet, &eff)
                } else {
                    census_bfs_engine(&*obj, &mem, &alphabet, &eff)
                }
            }
        };
        let bound_met =
            (obj.detectable() && obj.kind() == ObjectKind::Cas).then(|| report.meets_bound());
        let violation = (bound_met == Some(false)).then(|| {
            if report.truncated {
                format!(
                    "census truncated after {} expansions with {} of {} configurations \
                     observed — inconclusive, raise max_states",
                    report.work, report.distinct_shared, report.theorem_bound
                )
            } else {
                format!(
                    "complete census observed {} configurations, below the Theorem 1 \
                     bound of {}",
                    report.distinct_shared, report.theorem_bound
                )
            }
        });
        Verdict {
            object: self.display_name(&*obj),
            kind: obj.kind(),
            mode: RunMode::Census,
            detectable: obj.detectable(),
            passed: bound_met.unwrap_or(true),
            linearizable: None,
            bound_met,
            violation,
            witness: None,
            stats: RunStats {
                executions: report.work as u64,
                resolved_ops: report.resolved_ops,
                steps: report.steps,
                persists: report.persists,
                distinct_configs: report.distinct_shared as u64,
                theorem_bound: report.theorem_bound,
                truncated: report.truncated,
                shared_bits,
                private_bits,
                peak_resident_bytes: report.peak_resident_bytes,
                spilled_bytes: report.spill.map_or(0, |s| s.bytes_spilled),
                sched: report.sched,
                ..RunStats::default()
            },
        }
    }

    /// Searches bounded sequential histories for a doubly-perturbing
    /// witness (Definition 3; history bounds 3/3 as in the lemma proofs)
    /// and, when one is found, validates it against the real implementation
    /// through the driver. See [`perturb_with`](Scenario::perturb_with) for
    /// custom bounds.
    pub fn perturb(&self) -> Verdict {
        self.perturb_with(3, 3)
    }

    /// [`perturb`](Scenario::perturb) with explicit history bounds: `H1` up
    /// to `max_h1` operations, the p-free extension up to `max_ext`. The
    /// search alphabet is the workload's
    /// ([`Workload::alphabet`]) — the standard per-kind alphabet unless the
    /// workload pins one.
    ///
    /// `passed` means the spec-level result is implementation-consistent: a
    /// found witness revalidates on the built object (scenarios with ≥ 2
    /// processes), and "no witness" is itself a valid outcome (Lemma 4).
    pub fn perturb_with(&self, max_h1: usize, max_ext: usize) -> Verdict {
        let (obj, mem, shared_bits, private_bits) = self.construct(self.memory.unwrap_or_default());
        let alphabet = self
            .workload
            .as_ref()
            .map(|w| w.alphabet(obj.kind()))
            .unwrap_or_else(|| crate::perturb::default_alphabet(obj.kind()));
        if alphabet.is_empty() {
            return self.config_error(
                &*obj,
                RunMode::Perturb,
                "configuration error: the workload resolves to an empty operation alphabet \
                 — the witness search has nothing to perturb with; give the workload at \
                 least one operation"
                    .into(),
                shared_bits,
                private_bits,
            );
        }
        let witness = witness_search(obj.kind(), &alphabet, max_h1, max_ext);
        let passed = match &witness {
            Some(w) if obj.processes() >= 2 => validate_witness_on_impl(w, &*obj, &mem),
            _ => true,
        };
        Verdict {
            object: self.display_name(&*obj),
            kind: obj.kind(),
            mode: RunMode::Perturb,
            detectable: obj.detectable(),
            passed,
            linearizable: None,
            bound_met: Some(witness.is_some()),
            violation: None,
            witness,
            stats: RunStats {
                shared_bits,
                private_bits,
                ..RunStats::default()
            },
        }
    }

    /// Reports the scenario's logical NVM footprint from the layout
    /// allocator (the space-accounting experiment) without running
    /// anything.
    pub fn space(&self) -> Verdict {
        let (obj, _, shared_bits, private_bits) = self.construct(CacheMode::PrivateCache);
        Verdict {
            object: self.display_name(&*obj),
            kind: obj.kind(),
            mode: RunMode::Space,
            detectable: obj.detectable(),
            passed: true,
            linearizable: None,
            bound_met: None,
            violation: None,
            witness: None,
            stats: RunStats {
                shared_bits,
                private_bits,
                ..RunStats::default()
            },
        }
    }
}

/// Resolves a requested worker-thread count: `0` — the [`BfsConfig`] and
/// [`ExploreConfig`] default — means "use the host", i.e.
/// `std::thread::available_parallelism()` (falling back to 1 when the host
/// cannot report it). Any explicit nonzero request is honored as given.
pub fn resolve_parallelism(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// Which terminal runner produced a [`Verdict`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RunMode {
    /// Seeded randomized simulation with crash injection.
    Simulate,
    /// Exhaustive interleaving + crash-point exploration.
    Explore,
    /// Reachable-configuration census (Theorem 1).
    Census,
    /// Doubly-perturbing witness search (Definition 3).
    Perturb,
    /// Layout space accounting.
    Space,
}

impl RunMode {
    /// Lower-case tag for tables and JSON.
    pub fn tag(&self) -> &'static str {
        match self {
            RunMode::Simulate => "simulate",
            RunMode::Explore => "explore",
            RunMode::Census => "census",
            RunMode::Perturb => "perturb",
            RunMode::Space => "space",
        }
    }
}

/// Counters common to every terminal runner; fields a runner does not
/// measure stay zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Complete executions examined (histories for `simulate`, leaves for
    /// `explore`, ops/configurations processed for `census`).
    pub executions: u64,
    /// Operations that resolved (returned or reached a recovery verdict).
    pub resolved_ops: u64,
    /// System-wide crashes injected.
    pub crashes: u64,
    /// Recovery verdicts that reported a response — the interrupted
    /// operation *did* linearize before the crash (simulate runs).
    pub recovered_ok: u64,
    /// Recovery verdicts that reported `fail` — never linearized
    /// (simulate runs).
    pub recovered_failed: u64,
    /// In-flight operations recovery could not resolve within its step
    /// budget (process-crash runs; zero for every detectable object).
    pub recovered_unresolved: u64,
    /// Scheduler steps consumed.
    pub steps: u64,
    /// Explicit persist instructions executed.
    pub persists: u64,
    /// Distinct configurations (census: shared-memory classes; explore:
    /// unique nodes expanded).
    pub distinct_configs: u64,
    /// The Theorem 1 lower bound `2^N − 1` for the world's process count
    /// (census runs).
    pub theorem_bound: u64,
    /// Whether a budget truncated coverage.
    pub truncated: bool,
    /// Logical shared NVM bits allocated by the layout.
    pub shared_bits: u64,
    /// Logical private NVM bits allocated by the layout.
    pub private_bits: u64,
    /// Estimated peak resident bytes of the runner's data structures
    /// (census engines report it; other runners leave it zero). See
    /// [`CensusReport::peak_resident_bytes`](crate::CensusReport).
    pub peak_resident_bytes: u64,
    /// Bytes the external-memory census spilled to disk (frontier
    /// generations, sort runs, seen files; zero for in-RAM runs).
    pub spilled_bytes: u64,
    /// Work-stealing scheduler counters (census BFS and parallel explore
    /// runs; all-zero — empty per-worker vector — elsewhere).
    pub sched: SchedStats,
}

impl RunStats {
    /// Accumulates `other` into `self` (sums counters, ORs truncation,
    /// keeps the space fields of the first non-empty contributor — cells of
    /// one object share a layout).
    pub fn accumulate(&mut self, other: &RunStats) {
        self.executions += other.executions;
        self.resolved_ops += other.resolved_ops;
        self.crashes += other.crashes;
        self.recovered_ok += other.recovered_ok;
        self.recovered_failed += other.recovered_failed;
        self.recovered_unresolved += other.recovered_unresolved;
        self.steps += other.steps;
        self.persists += other.persists;
        self.distinct_configs += other.distinct_configs;
        self.theorem_bound = self.theorem_bound.max(other.theorem_bound);
        self.truncated |= other.truncated;
        // Peak is a high-water mark, not a flow: cells may run
        // concurrently, but the max is the honest lower bound either way.
        self.peak_resident_bytes = self.peak_resident_bytes.max(other.peak_resident_bytes);
        self.spilled_bytes += other.spilled_bytes;
        self.sched.accumulate(&other.sched);
        if self.shared_bits == 0 {
            self.shared_bits = other.shared_bits;
            self.private_bits = other.private_bits;
        }
    }
}

/// The shared result type of every terminal runner: did the run pass, was
/// the history linearizable, was the space bound met, plus counts and
/// stats. See [`Verdict::to_json`](crate::report) for the machine-readable
/// rendering.
#[derive(Clone, Debug, PartialEq)]
pub struct Verdict {
    /// Reported object name (the scenario label, or the object's own name).
    pub object: String,
    /// The sequential type implemented.
    pub kind: ObjectKind,
    /// Which runner produced this verdict.
    pub mode: RunMode,
    /// Whether the object claims detectability.
    pub detectable: bool,
    /// The runner's overall pass/fail call.
    pub passed: bool,
    /// Whether every checked history was durably linearizable with honest
    /// recovery verdicts (`None` for runners that do not check histories).
    pub linearizable: Option<bool>,
    /// Census: whether the Theorem 1 `2^N − 1` bound was met (detectable
    /// CAS only). Perturb: whether a doubly-perturbing witness exists.
    pub bound_met: Option<bool>,
    /// Rendered first violation, when one was found.
    pub violation: Option<String>,
    /// The doubly-perturbing witness, when the perturb runner found one.
    pub witness: Option<PerturbWitness>,
    /// Counters.
    pub stats: RunStats,
}

impl Verdict {
    /// Panics with the violation (or a summary) unless the run passed.
    pub fn assert_passed(&self) {
        assert!(
            self.passed,
            "{} [{}] failed after {} executions:\n{}",
            self.object,
            self.mode.tag(),
            self.stats.executions,
            self.violation
                .as_deref()
                .unwrap_or("(no violation rendered)")
        );
    }

    /// [`assert_passed`](Verdict::assert_passed) plus "coverage was not
    /// truncated" — the fully-exhaustive variant.
    pub fn assert_complete(&self) {
        self.assert_passed();
        assert!(
            !self.stats.truncated,
            "{} [{}] truncated at {} executions",
            self.object,
            self.mode.tag(),
            self.stats.executions
        );
    }
}

/// Which terminal runner a [`Sweep`] executes per cell.
#[derive(Clone, Debug)]
pub enum Runner {
    /// [`Scenario::simulate`] — a seed axis selects `cfg.seed` per cell.
    Simulate(SimConfig),
    /// [`Scenario::explore`].
    Explore(ExploreConfig),
    /// [`Scenario::census`].
    Census(BfsConfig),
    /// [`Scenario::perturb`].
    Perturb,
    /// [`Scenario::space`].
    Space,
}

#[derive(Clone)]
struct Cell {
    scenario: Scenario,
    seed: Option<u64>,
}

/// A batch of [`Scenario`] runs fanned across axes — seed ranges, object
/// kinds, crash probabilities — executed on `std::thread` workers with a
/// deterministic aggregate report. See the [module docs](self).
#[derive(Clone)]
pub struct Sweep {
    cells: Vec<Cell>,
    parallelism: usize,
}

impl Sweep {
    /// A sweep of one cell: the base scenario. Add axes to fan out.
    pub fn new(base: Scenario) -> Sweep {
        Sweep {
            cells: vec![Cell {
                scenario: base,
                seed: None,
            }],
            parallelism: 1,
        }
    }

    /// A sweep over an explicit list of scenarios (one cell each, in
    /// order).
    pub fn over(scenarios: impl IntoIterator<Item = Scenario>) -> Sweep {
        Sweep {
            cells: scenarios
                .into_iter()
                .map(|scenario| Cell {
                    scenario,
                    seed: None,
                })
                .collect(),
            parallelism: 1,
        }
    }

    /// Crosses every existing cell with a seed range (seeds are the
    /// innermost axis). Under [`Runner::Simulate`] the seed drives the
    /// simulator's RNG; under [`Runner::Explore`]/[`Runner::Census`] it
    /// drives workload resolution, which varies [`Workload::Random`] draws
    /// only — with a deterministic workload those cells are identical, so
    /// a seed axis there mostly multiplies work.
    pub fn seeds(mut self, seeds: Range<u64>) -> Sweep {
        self.cells = self
            .cells
            .iter()
            .flat_map(|cell| {
                seeds.clone().map(|seed| Cell {
                    scenario: cell.scenario.clone(),
                    seed: Some(seed),
                })
            })
            .collect();
        self
    }

    /// Crosses every existing cell with the given object kinds (replacing
    /// each cell's object with the kind-default implementation).
    pub fn objects(mut self, kinds: &[ObjectKind]) -> Sweep {
        self.cells = self
            .cells
            .iter()
            .flat_map(|cell| {
                kinds.iter().map(|&kind| {
                    let mut c = cell.clone();
                    c.scenario.object = ObjectSpec::Kind(kind);
                    c.scenario.label = None;
                    c
                })
            })
            .collect();
        self
    }

    /// Crosses every existing cell with the given crash probabilities
    /// (overriding the fault model's `crash_prob`; cells without a fault
    /// model get [`CrashModel::storms`]).
    pub fn crash_probs(mut self, probs: &[f64]) -> Sweep {
        self.cells = self
            .cells
            .iter()
            .flat_map(|cell| {
                probs.iter().map(|&p| {
                    let mut c = cell.clone();
                    let faults = c.scenario.faults.unwrap_or_else(|| CrashModel::storms(0.0));
                    c.scenario.faults = Some(faults.prob(p));
                    c
                })
            })
            .collect();
        self
    }

    /// Worker threads for cell execution (default 1). The report is
    /// deterministic regardless of this setting: cells are seeded
    /// independently and results merge in construction order.
    pub fn parallelism(mut self, n: usize) -> Sweep {
        self.parallelism = n.max(1);
        self
    }

    /// Number of cells the sweep will run.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the sweep has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Runs every cell under `runner` and aggregates the verdicts.
    pub fn run(&self, runner: &Runner) -> SweepReport {
        let run_cell = |cell: &Cell| -> SweepCell {
            // The seed axis feeds the simulator's run seed; for the other
            // runners it feeds workload resolution (meaningful for
            // `Workload::Random`; a no-op for deterministic workloads).
            let seeded = || match cell.seed {
                Some(seed) => cell.scenario.clone().workload_seed(seed),
                None => cell.scenario.clone(),
            };
            let verdict = match runner {
                Runner::Simulate(cfg) => {
                    let mut c = cfg.clone();
                    if let Some(seed) = cell.seed {
                        c.seed = seed;
                    }
                    cell.scenario.simulate(&c)
                }
                Runner::Explore(cfg) => seeded().explore(cfg),
                Runner::Census(cfg) => seeded().census(cfg),
                Runner::Perturb => cell.scenario.perturb(),
                Runner::Space => cell.scenario.space(),
            };
            let crash_prob = cell
                .scenario
                .faults
                .map(|f| f.crash_prob)
                .unwrap_or(match runner {
                    Runner::Simulate(cfg) => cfg.crash_prob,
                    _ => 0.0,
                });
            SweepCell {
                object: verdict.object.clone(),
                seed: cell.seed.unwrap_or(match runner {
                    Runner::Simulate(cfg) => cfg.seed,
                    _ => 0,
                }),
                crash_prob,
                verdict,
            }
        };

        let cells = if self.parallelism <= 1 || self.cells.len() <= 1 {
            self.cells.iter().map(run_cell).collect()
        } else {
            // Round-robin lanes, results re-merged in construction order —
            // the same recipe that keeps the parallel explorer
            // deterministic.
            let workers = self.parallelism.min(self.cells.len());
            let mut indexed: Vec<Option<SweepCell>> = (0..self.cells.len()).map(|_| None).collect();
            let lanes: Vec<Vec<usize>> = (0..workers)
                .map(|w| (w..self.cells.len()).step_by(workers).collect())
                .collect();
            let results: Vec<Vec<(usize, SweepCell)>> = std::thread::scope(|s| {
                let handles: Vec<_> = lanes
                    .into_iter()
                    .map(|lane| {
                        s.spawn(|| {
                            lane.into_iter()
                                .map(|i| (i, run_cell(&self.cells[i])))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sweep worker panicked"))
                    .collect()
            });
            for (i, cell) in results.into_iter().flatten() {
                indexed[i] = Some(cell);
            }
            indexed
                .into_iter()
                .map(|c| c.expect("every cell produced a result"))
                .collect()
        };
        SweepReport { cells }
    }

    /// Runs every cell through [`Scenario::simulate`], the crash-storm
    /// batch the seed axis exists for.
    pub fn simulate(&self, cfg: &SimConfig) -> SweepReport {
        self.run(&Runner::Simulate(cfg.clone()))
    }
}

/// One executed sweep cell: its axis coordinates plus the verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepCell {
    /// Reported object name.
    pub object: String,
    /// The seed this cell ran under.
    pub seed: u64,
    /// The per-step crash probability this cell ran under.
    pub crash_prob: f64,
    /// The cell's verdict.
    pub verdict: Verdict,
}

/// The aggregated outcome of a [`Sweep`]: per-cell verdicts in
/// deterministic (construction) order, with grouping helpers for report
/// tables. Two sweeps of the same cells produce equal reports regardless of
/// worker count.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepReport {
    /// The executed cells, in construction order.
    pub cells: Vec<SweepCell>,
}

/// One row of the per-object aggregate table.
#[derive(Clone, Debug, PartialEq)]
pub struct AggregateRow {
    /// Reported object name.
    pub object: String,
    /// Cells aggregated into this row.
    pub runs: u64,
    /// Cells whose verdict failed.
    pub failures: u64,
    /// Summed counters.
    pub stats: RunStats,
}

impl SweepReport {
    /// Whether every cell passed.
    pub fn all_passed(&self) -> bool {
        self.cells.iter().all(|c| c.verdict.passed)
    }

    /// Number of failed cells.
    pub fn failures(&self) -> usize {
        self.cells.iter().filter(|c| !c.verdict.passed).count()
    }

    /// Summed counters across all cells.
    pub fn totals(&self) -> RunStats {
        let mut total = RunStats::default();
        for c in &self.cells {
            total.accumulate(&c.verdict.stats);
        }
        total
    }

    /// Aggregates cells per object, in first-appearance order (which is
    /// construction order, hence deterministic).
    pub fn by_object(&self) -> Vec<AggregateRow> {
        let mut rows: Vec<AggregateRow> = Vec::new();
        for c in &self.cells {
            let row = match rows.iter_mut().find(|r| r.object == c.object) {
                Some(row) => row,
                None => {
                    rows.push(AggregateRow {
                        object: c.object.clone(),
                        runs: 0,
                        failures: 0,
                        stats: RunStats::default(),
                    });
                    rows.last_mut().expect("just pushed")
                }
            };
            row.runs += 1;
            row.failures += u64::from(!c.verdict.passed);
            row.stats.accumulate(&c.verdict.stats);
        }
        rows
    }

    /// Panics with the first failing cell's violation unless every cell
    /// passed.
    pub fn assert_all_passed(&self) {
        if let Some(c) = self.cells.iter().find(|c| !c.verdict.passed) {
            panic!(
                "sweep cell failed (object {}, seed {}, crash_prob {}):\n{}",
                c.object,
                c.seed,
                c.crash_prob,
                c.verdict
                    .violation
                    .as_deref()
                    .unwrap_or("(no violation rendered)")
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::gray_code_cas_ops;
    use detectable::OpSpec;
    use nvm::Pid;

    #[test]
    fn simulate_matches_engine_defaults() {
        let v = Scenario::object(ObjectKind::Register)
            .processes(3)
            .workload(Workload::mixed(3))
            .faults(CrashModel::storms(0.05))
            .simulate(&SimConfig {
                seed: 11,
                ..Default::default()
            });
        v.assert_passed();
        assert_eq!(v.mode, RunMode::Simulate);
        assert_eq!(v.stats.executions, 1);
        assert!(v.stats.resolved_ops >= 9);
    }

    #[test]
    fn explore_script_equals_engine() {
        let script = vec![
            (Pid::new(0), OpSpec::Write(1)),
            (Pid::new(1), OpSpec::Read),
            (Pid::new(1), OpSpec::Write(2)),
        ];
        let v = Scenario::object(ObjectKind::Register)
            .workload(Workload::script(script.clone()))
            .explore(&ExploreConfig::default());
        v.assert_complete();

        let (reg, mem) = crate::sim::build_world(|b| DetectableRegister::new(b, 2, 0));
        let out = explore_engine(
            &reg,
            &mem,
            OpSource::Script(&script),
            &ExploreConfig::default(),
        );
        assert_eq!(v.stats.executions, out.leaves as u64);
        assert_eq!(v.stats.distinct_configs, out.unique_nodes as u64);
    }

    #[test]
    fn census_script_runs_the_gray_code_drive() {
        let n = 4u32;
        let v = Scenario::object(ObjectKind::Cas)
            .processes(n)
            .workload(Workload::script(gray_code_cas_ops(n)))
            .census(&BfsConfig::default());
        assert_eq!(v.bound_met, Some(true));
        assert_eq!(v.stats.distinct_configs, 1 << n);
        assert_eq!(v.stats.theorem_bound, (1 << n) - 1);
        v.assert_passed();
    }

    #[test]
    fn census_alphabet_runs_the_bfs() {
        let v = Scenario::object(ObjectKind::Cas)
            .workload(Workload::round_robin(
                vec![
                    OpSpec::Cas { old: 0, new: 1 },
                    OpSpec::Cas { old: 1, new: 0 },
                ],
                4,
            ))
            .census(&BfsConfig {
                max_ops: 4,
                max_states: 200_000,
                ..Default::default()
            });
        assert_eq!(v.bound_met, Some(true));
        v.assert_passed();
    }

    #[test]
    fn perturb_classifies_the_boundary() {
        let cas = Scenario::object(ObjectKind::Cas).perturb();
        assert_eq!(cas.bound_met, Some(true), "Lemma 6");
        assert!(cas.witness.is_some());
        cas.assert_passed();

        let mr = Scenario::object(ObjectKind::MaxRegister).perturb();
        assert_eq!(mr.bound_met, Some(false), "Lemma 4");
        assert!(mr.witness.is_none());
        mr.assert_passed();
    }

    #[test]
    fn space_reports_algorithm2_bits() {
        for n in [1u32, 8, 32] {
            let v = Scenario::object(ObjectKind::Cas).processes(n).space();
            assert_eq!(v.stats.shared_bits, 32 + u64::from(n));
        }
    }

    #[test]
    fn custom_objects_and_labels_flow_through() {
        let v = Scenario::custom(|b| Box::new(DetectableCas::new(b, 2, 0)))
            .label("my-cas")
            .space();
        assert_eq!(v.object, "my-cas");
        assert_eq!(v.kind, ObjectKind::Cas);
    }

    #[test]
    fn sweep_axes_cross_deterministically() {
        let sweep = Sweep::new(Scenario::object(ObjectKind::Register).processes(2))
            .objects(&[ObjectKind::Register, ObjectKind::Cas])
            .seeds(0..3);
        assert_eq!(sweep.len(), 6);
        let report = sweep.simulate(&SimConfig {
            ops_per_process: 2,
            crash_prob: 0.05,
            ..Default::default()
        });
        report.assert_all_passed();
        let rows = report.by_object();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].runs, 3);
        // Seeds are the inner axis: first three cells share an object.
        assert_eq!(report.cells[0].object, report.cells[2].object);
        assert_ne!(report.cells[0].object, report.cells[3].object);
    }

    #[test]
    fn sweep_parallelism_changes_nothing() {
        let base = Sweep::new(
            Scenario::object(ObjectKind::Counter)
                .processes(3)
                .workload(Workload::mixed(3))
                .faults(CrashModel::storms(0.08)),
        )
        .seeds(0..24);
        let seq = base.clone().parallelism(1).simulate(&SimConfig::default());
        let par = base.parallelism(8).simulate(&SimConfig::default());
        assert_eq!(seq, par);
    }

    #[test]
    fn workload_seed_varies_random_draws_in_explore() {
        use detectable::OpSpec;
        let base = Scenario::object(ObjectKind::Register).workload(Workload::random(
            vec![OpSpec::Read, OpSpec::Write(1), OpSpec::Write(2)],
            3,
        ));
        let cfg = ExploreConfig {
            max_crashes: 0,
            // Sequential: whole-verdict equality below includes the
            // scheduler counters, which are nondeterministic run to run
            // under parallelism.
            parallelism: 1,
            ..Default::default()
        };
        let a = base.clone().workload_seed(1).explore(&cfg);
        let b = base.clone().workload_seed(1).explore(&cfg);
        assert_eq!(a, b, "equal workload seeds explore identical trees");
        // Different seeds draw different op lists for at least one of a
        // handful of seeds (the draw space is tiny but not degenerate).
        assert!(
            (2..10).any(|s| base.clone().workload_seed(s).explore(&cfg) != a),
            "workload_seed must be able to vary Random draws"
        );
        // A Sweep seed axis reaches non-simulate runners the same way.
        let sweep = Sweep::new(base).seeds(0..4).run(&Runner::Explore(cfg));
        assert!(
            sweep
                .cells
                .iter()
                .any(|c| c.verdict.stats != sweep.cells[0].verdict.stats),
            "seed axis varies Random-workload explore cells"
        );
    }

    #[test]
    fn empty_alphabet_census_and_perturb_are_config_errors() {
        let empty = Workload::per_process(vec![vec![], vec![]]);
        let census = Scenario::object(ObjectKind::Cas)
            .workload(empty.clone())
            .census(&BfsConfig::default());
        assert!(!census.passed);
        assert!(
            census
                .violation
                .as_deref()
                .is_some_and(|v| v.contains("configuration error")),
            "census must say why: {:?}",
            census.violation
        );
        assert_eq!(census.stats.executions, 0, "nothing ran");

        let perturb = Scenario::object(ObjectKind::Cas).workload(empty).perturb();
        assert!(!perturb.passed);
        assert!(perturb
            .violation
            .as_deref()
            .is_some_and(|v| v.contains("configuration error")));

        let script = Scenario::object(ObjectKind::Cas)
            .workload(Workload::script(Vec::new()))
            .census(&BfsConfig::default());
        assert!(!script.passed);
        assert!(script
            .violation
            .as_deref()
            .is_some_and(|v| v.contains("configuration error")));
    }

    #[test]
    #[should_panic(expected = "script workload references p7")]
    fn scenario_rejects_script_pids_beyond_the_world() {
        let _ = Scenario::object(ObjectKind::Register)
            .workload(Workload::script(vec![(Pid::new(7), OpSpec::Write(1))]))
            .simulate(&SimConfig::default());
    }

    #[test]
    fn auto_symmetry_resolves_from_the_resolved_workload() {
        use crate::explore::SymmetryMode;
        // One-op alphabet, 3 processes: every list identical → reduction on.
        let sym = Scenario::object(ObjectKind::Cas)
            .processes(3)
            .workload(Workload::round_robin(
                vec![OpSpec::Cas { old: 0, new: 1 }],
                1,
            ))
            .faults(CrashModel::exhaustive(1).retries(1));
        let auto = sym.explore(&ExploreConfig::default());
        let off = sym.explore(&ExploreConfig {
            symmetry: SymmetryMode::Off,
            ..Default::default()
        });
        auto.assert_passed();
        off.assert_passed();
        assert_eq!(
            auto.stats.executions, off.stats.executions,
            "reduction never changes totals"
        );
        assert!(
            auto.stats.distinct_configs < off.stats.distinct_configs,
            "auto-enabled reduction expanded fewer nodes ({} vs {})",
            auto.stats.distinct_configs,
            off.stats.distinct_configs
        );

        // Hand-assigned per-process lists keep reduction off even when
        // identical (the family gate is conservative, per the Auto contract).
        let hand = Scenario::object(ObjectKind::Cas)
            .processes(3)
            .workload(Workload::per_process(vec![
                vec![OpSpec::Cas {
                    old: 0,
                    new: 1
                }];
                3
            ]))
            .faults(CrashModel::exhaustive(1).retries(1));
        let hand_auto = hand.explore(&ExploreConfig::default());
        assert_eq!(
            hand_auto.stats.distinct_configs, off.stats.distinct_configs,
            "per-process workloads resolve Auto to Off"
        );
    }

    #[test]
    fn crash_prob_axis_overrides_faults() {
        let report = Sweep::new(
            Scenario::object(ObjectKind::Register)
                .processes(2)
                .workload(Workload::mixed(2)),
        )
        .crash_probs(&[0.0, 0.1])
        .seeds(0..2)
        .simulate(&SimConfig::default());
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.cells[0].crash_prob, 0.0);
        assert_eq!(report.cells[2].crash_prob, 0.1);
        // Crash-free cells never crash; the stormy cells were seeded the
        // same way, so any difference comes from the axis.
        assert_eq!(
            report.cells[0].verdict.stats.crashes + report.cells[1].verdict.stats.crashes,
            0
        );
        report.assert_all_passed();
    }
}
