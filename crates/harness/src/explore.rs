//! Exhaustive state-space exploration for small configurations.
//!
//! Enumerates **every** interleaving of step-machine actions and every crash
//! point (within a crash budget), checking each complete execution with the
//! durable-linearizability + detectability checker. This is how the
//! reproduction machine-verifies Lemmas 1 and 2 at small scale, and how the
//! Theorem 2 experiment automatically finds the adversarial execution of
//! Figure 2 against no-auxiliary-state candidates.
//!
//! Two sources of work are supported:
//!
//! * [`OpSource::PerProcess`] — each process has its own operation list; the
//!   explorer branches over *all* interleavings;
//! * [`OpSource::Script`] — one global sequence of operations executed one
//!   at a time (no concurrency), but with crashes allowed between any two
//!   primitive steps. The Figure 2 construction is essentially sequential,
//!   so this mode finds it cheaply.
//!
//! # Engine
//!
//! The explorer is an explicit work-stack depth-first search over
//! [`Driver`] system configurations, with five cost reducers layered on
//! the naive exponential tree:
//!
//! 1. **Undo-log branching** — child states are entered under a memory
//!    [`checkpoint`](SimMemory::checkpoint) and left via
//!    [`rollback`](SimMemory::rollback), so branch cost is O(writes along
//!    the edge) instead of O(memory size) full-copy snapshots.
//! 2. **Partial-order reduction** — in full-interleaving mode, consecutive
//!    steps of one process that touch only its private cells are folded
//!    into a single scheduler action ([`Driver::step_merged`]).
//! 3. **State-hash pruning** — each node is fingerprinted by
//!    `(memory [`state_hash`], driver volatile state, workload positions,
//!    crash budget, history)`. When two prefixes converge to the same
//!    fingerprint (commuting steps do this constantly), the second is not
//!    re-explored: the memoized subtree **leaf count** is added instead, so
//!    reported totals are identical to the unpruned search while the work
//!    is often exponentially smaller. Keys are 128-bit hashes; a collision
//!    (vanishingly unlikely) could misattribute a subtree, the same
//!    trade-off the census fingerprints make.
//! 4. **Symmetry reduction** ([`ExploreConfig::symmetry`]) — machine-free
//!    nodes are fingerprinted by their **process-permutation orbit**
//!    (per-process signatures, relocated + object-rewritten memory,
//!    renamed history — see `Engine::canonical_key`), so only one
//!    member of each orbit is expanded; totals again stay identical.
//!    Requires [`RecoverableObject::permute_memory`] support (the CAS
//!    family; see that hook's equivariance contract for why the max
//!    register and register stay opaque).
//! 5. **Budgeted memo** ([`ExploreConfig::memo_budget`]) — the pruning
//!    memo evicts in generations once its resident-entry budget fills;
//!    evicted configurations re-explore on re-encounter, so unique-state
//!    blow-ups degrade to extra work instead of OOM and totals never
//!    depend on the budget.
//!
//! Setting [`ExploreConfig::parallelism`] ≥ 2 splits the tree at a frontier
//! of subtree roots (each on a [`fork`](SimMemory::fork) of the memory) and
//! explores subtrees on worker threads. Results are merged in canonical
//! (depth-first) order, so on runs that complete within the leaf budget
//! the outcome — leaf count, violation found or not, and *which*
//! violation — is deterministic regardless of thread count. Two
//! qualifications: when a violation is found, `leaves` reports only
//! executions examined up to discovery (its exact value is
//! scheduling-dependent in parallel runs); and when the `max_leaves`
//! budget truncates a parallel run, *which* leaves got covered before the
//! budget tripped is scheduling-dependent, so a violation hiding near the
//! budget boundary may be found in one run and missed in another
//! (sequential truncation always covers the canonical first `max_leaves`
//! executions).
//!
//! [`state_hash`]: SimMemory::state_hash

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use detectable::{OpSpec, RecoverableObject};
use nvm::{CacheMode, Checkpoint, CrashPolicy, Pid, SimMemory, Word};

use crate::driver::{op_key, Driver, ProcState, RetryPolicy};
use crate::history::{OpRecord, Outcome};
use crate::linearize::{check_execution, Violation};
use crate::sched::{SchedStats, Scheduler};

/// Where operations come from (the engine's borrowed view; the owned
/// [`Workload`](crate::Workload) type resolves onto it).
#[derive(Copy, Clone, Debug)]
pub enum OpSource<'a> {
    /// `workload[p]` is the operation list of process `p`; all interleavings
    /// are explored.
    PerProcess(&'a [Vec<OpSpec>]),
    /// A single global sequence, executed one operation at a time.
    Script(&'a [(Pid, OpSpec)]),
}

/// Whether the explorer canonicalizes pruning fingerprints under
/// process-id permutation (symmetry reduction).
///
/// Reduction merges configurations that differ only by a renaming of
/// process ids — same multiset of per-process states, same memory up to
/// relocating each process's cells, same history up to renaming — so only
/// one member of each orbit is expanded while reported leaf/violation
/// totals stay identical to the unreduced search (orbit members have
/// isomorphic subtrees, and the memo accounts theirs by count). It
/// requires the object to support
/// [`permute_memory`](RecoverableObject::permute_memory) and a
/// process-uniform layout; where either is missing the explorer silently
/// falls back to the plain search.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum SymmetryMode {
    /// Resolved by the caller's context: [`Scenario::explore`] turns this
    /// into `On` exactly when the resolved workload is provably symmetric
    /// (an alphabet-generated workload where at least two processes run
    /// identical operation lists); direct engine calls treat `Auto` as
    /// `Off`, since the engine cannot see workload provenance.
    ///
    /// [`Scenario::explore`]: crate::Scenario::explore
    #[default]
    Auto,
    /// Never canonicalize. The exact engine behavior of previous releases.
    Off,
    /// Canonicalize whenever the object and layout support it. Sound for
    /// *any* per-process workload (asymmetric lists simply produce trivial
    /// orbits); scripts never reduce (a script fixes the acting process of
    /// every step).
    On,
}

/// Exploration parameters.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Maximum system-wide crashes per execution.
    pub max_crashes: usize,
    /// Re-invoke operations whose recovery said `fail` (bounded per process
    /// by `max_retries`).
    pub retry_on_fail: bool,
    /// Retry budget per process (prevents unbounded fail/retry chains when
    /// crashes keep arriving).
    pub max_retries: usize,
    /// Stop after this many complete executions (safety valve; reaching it
    /// is reported in the outcome).
    pub max_leaves: usize,
    /// Crash policy applied at each injected crash.
    pub crash_policy: CrashPolicy,
    /// Deduplicate converging prefixes through the state-hash memo. Leaf
    /// counts are unchanged by pruning; disable only to measure the win.
    pub prune: bool,
    /// Symmetry reduction of the pruning fingerprints (see
    /// [`SymmetryMode`]). Totals are identical at every setting.
    pub symmetry: SymmetryMode,
    /// Resident-entry budget for the pruning memo, `None` for unbounded.
    /// The memo evicts in generations (see [`Memo`] internals): exceeding
    /// the budget drops the oldest generation, so a run whose unique-state
    /// count outgrows RAM degrades to re-exploring evicted states instead
    /// of aborting — totals stay exact, only `unique_nodes`/work grows.
    pub memo_budget: Option<usize>,
    /// Disk tier for the pruning memo: with a directory set, generations
    /// evicted under [`memo_budget`](Self::memo_budget) are written as
    /// sorted run files instead of being forgotten, and a memo miss probes
    /// the runs (newest first, binary search) before declaring the
    /// configuration unseen — so a budget-bound run keeps its pruning
    /// knowledge at disk latency instead of re-exploring. Totals are
    /// unchanged either way; the run files live in a unique subdirectory
    /// removed when the exploration finishes.
    pub disk_dir: Option<std::path::PathBuf>,
    /// Worker threads for subtree exploration. At this layer `0` and `1`
    /// both mean in-place sequential search; the
    /// [`Scenario`](crate::Scenario) runner resolves `0` (the default) to
    /// the host's available parallelism before the engine sees it. Results
    /// on runs that finish within the leaf budget are deterministic
    /// regardless of the setting (see the [module docs](self) for the
    /// truncation caveat).
    pub parallelism: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_crashes: 1,
            retry_on_fail: true,
            max_retries: 2,
            max_leaves: 5_000_000,
            crash_policy: CrashPolicy::DropAll,
            prune: true,
            symmetry: SymmetryMode::Auto,
            // ~256 MB of memo at worst; large enough that every in-repo
            // exhaustive run fits, small enough that a state-space blow-up
            // degrades to re-exploration instead of OOM.
            memo_budget: Some(4_000_000),
            disk_dir: None,
            parallelism: 0,
        }
    }
}

/// The result of an exploration.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// Complete executions checked (counted with multiplicity: a subtree
    /// skipped by the state-hash memo contributes its full leaf count;
    /// saturates at `usize::MAX` for astronomically large trees).
    pub leaves: usize,
    /// First violation found, in canonical depth-first order.
    pub violation: Option<Violation>,
    /// Whether the leaf budget was exhausted (coverage incomplete).
    pub truncated: bool,
    /// Distinct system configurations actually expanded.
    pub unique_nodes: usize,
    /// Subtrees skipped because their root configuration was already
    /// explored (per worker; informational).
    pub memo_hits: usize,
    /// Whether symmetry reduction was actually active (requested *and*
    /// supported by the object, layout, and workload shape).
    pub symmetry: bool,
    /// Memo entries dropped from RAM by generation eviction under
    /// [`ExploreConfig::memo_budget`] (informational; eviction never
    /// changes totals, it only forces re-exploration — or, with
    /// [`ExploreConfig::disk_dir`], a disk probe).
    pub memo_evictions: usize,
    /// Memo hits served from spilled run files
    /// ([`ExploreConfig::disk_dir`]): pruning that a RAM-only budgeted run
    /// would have lost to eviction.
    pub memo_disk_hits: usize,
    /// Scheduler-action counters of the parallel subtree workers (steals,
    /// parks, per-worker subtree counts). All-zero for sequential runs —
    /// they never start a scheduler.
    pub sched: SchedStats,
}

impl ExploreOutcome {
    /// Panics with the violation if one was found, and on truncation (test
    /// helper for fully exhaustive runs).
    pub fn assert_clean(&self) {
        self.assert_no_violation();
        assert!(
            !self.truncated,
            "exploration truncated at {} leaves",
            self.leaves
        );
    }

    /// Panics with the violation if one was found; tolerates truncation
    /// (test helper for *bounded*-exhaustive runs, where the DFS covers the
    /// first `max_leaves` executions systematically).
    pub fn assert_no_violation(&self) {
        if let Some(v) = &self.violation {
            panic!(
                "exploration found a violation after {} leaves:\n{v}",
                self.leaves
            );
        }
    }
}

/// One system configuration in the search tree: driver (process states,
/// retries, history) plus workload positions and the crash budget used.
#[derive(Clone)]
struct Node {
    driver: Driver,
    next_op: Vec<usize>,
    script_pos: usize,
    crashes_used: usize,
}

impl Node {
    fn root(n: u32) -> Node {
        Node {
            driver: Driver::new(n),
            next_op: vec![0; n as usize],
            script_pos: 0,
            crashes_used: 0,
        }
    }
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Action {
    Crash,
    Proc(usize),
}

/// The scheduler actions available from `node`, in canonical order.
fn actions(cfg: &ExploreConfig, source: OpSource<'_>, node: &Node) -> Vec<Action> {
    let mut out = Vec::new();
    if node.driver.any_in_flight() && node.crashes_used < cfg.max_crashes {
        out.push(Action::Crash);
    }
    match source {
        OpSource::PerProcess(w) => {
            // Process index addresses three parallel structures (driver
            // state, workload list, op cursor), so a plain index loop it is.
            #[allow(clippy::needless_range_loop)]
            for i in 0..node.driver.processes() {
                match node.driver.state(i) {
                    ProcState::Idle => {
                        if node.next_op[i] < w[i].len() {
                            out.push(Action::Proc(i));
                        }
                    }
                    ProcState::Done => {}
                    _ => out.push(Action::Proc(i)),
                }
            }
        }
        OpSource::Script(script) => {
            // One operation at a time: if some process is mid-operation (or
            // mid-recovery), only it may act; otherwise the script advances.
            if let Some(i) = (0..node.driver.processes()).find(|&i| !node.driver.state(i).is_idle())
            {
                out.push(Action::Proc(i));
            } else if node.script_pos < script.len() {
                out.push(Action::Proc(script[node.script_pos].0.idx()));
            }
        }
    }
    out
}

/// One shard of the budgeted memo: two hash-map generations plus an
/// eviction count. Inserts land in `cur`; when `cur` fills its per-shard
/// budget it becomes `prev` and the old `prev` generation is dropped
/// wholesale — O(1) amortized eviction with no per-entry bookkeeping, at
/// the cost of evicting in coarse batches (the classic two-generation
/// cache). Lookups consult both generations.
#[derive(Default)]
struct MemoShard {
    cur: HashMap<(u64, u64), u64>,
    prev: HashMap<(u64, u64), u64>,
    evicted: usize,
    /// Spilled generations of this shard, oldest first (disk tier only).
    runs: Vec<std::path::PathBuf>,
}

/// The memo's disk tier: a unique run directory plus counters. Created by
/// [`Memo::new`] when [`ExploreConfig::disk_dir`] is set; the directory is
/// removed when the memo is dropped.
struct MemoDisk {
    dir: std::path::PathBuf,
    seq: AtomicUsize,
    disk_hits: AtomicUsize,
}

impl MemoDisk {
    /// Writes one evicted generation as a `(k0, k1, count)`-sorted run
    /// file and returns its path. I/O failure panics: a half-written run
    /// would silently serve wrong counts.
    fn spill(&self, entries: &HashMap<(u64, u64), u64>) -> std::path::PathBuf {
        use std::io::Write;
        let mut sorted: Vec<_> = entries.iter().map(|(&k, &v)| (k, v)).collect();
        sorted.sort_unstable_by_key(|&(k, _)| k);
        let path = self.dir.join(format!(
            "memo-{}.run",
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        let mut w =
            std::io::BufWriter::new(std::fs::File::create(&path).expect("create memo run file"));
        for ((k0, k1), count) in sorted {
            for word in [k0, k1, count] {
                w.write_all(&word.to_le_bytes()).expect("write memo run");
            }
        }
        w.flush().expect("flush memo run");
        path
    }

    /// Binary-searches one sorted run file for `key` (24-byte records).
    fn probe(path: &std::path::Path, key: (u64, u64)) -> Option<u64> {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = std::fs::File::open(path).ok()?;
        let records = f.metadata().ok()?.len() / 24;
        let (mut lo, mut hi) = (0u64, records);
        let mut buf = [0u8; 24];
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            f.seek(SeekFrom::Start(mid * 24)).ok()?;
            f.read_exact(&mut buf).ok()?;
            let k = (
                u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes")),
                u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
            );
            match k.cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    return Some(u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes")));
                }
            }
        }
        None
    }
}

/// The visited-node memo: configuration fingerprint → exact subtree leaf
/// count, sharded so parallel workers share pruning knowledge with low
/// contention. Only violation-free, fully-counted subtrees are entered, so
/// concurrent duplicate computation is benign (both writers insert the same
/// value). A [`memo_budget`](ExploreConfig::memo_budget) caps resident
/// entries by generation eviction: evicted configurations are simply
/// re-explored on re-encounter, so totals never depend on the budget.
struct Memo {
    shards: Vec<Mutex<MemoShard>>,
    /// Per-generation entry cap per shard (`usize::MAX` when unbounded).
    /// Resident entries are bounded by `2 × cap × SHARDS ≈ budget`.
    shard_cap: usize,
    /// Disk tier for evicted generations ([`ExploreConfig::disk_dir`]).
    disk: Option<MemoDisk>,
}

/// Monotone memo-directory counter so concurrent explorations under one
/// `disk_dir` never collide.
static MEMO_DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

impl Drop for Memo {
    fn drop(&mut self) {
        if let Some(disk) = &self.disk {
            let _ = std::fs::remove_dir_all(&disk.dir);
        }
    }
}

impl Memo {
    const SHARDS: usize = 64;

    fn new(budget: Option<usize>, disk_dir: Option<&std::path::Path>) -> Self {
        let disk = disk_dir.map(|base| {
            let dir = base.join(format!(
                "explore-memo-{}-{}",
                std::process::id(),
                MEMO_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("create memo spill dir");
            MemoDisk {
                dir,
                seq: AtomicUsize::new(0),
                disk_hits: AtomicUsize::new(0),
            }
        });
        Memo {
            shards: (0..Self::SHARDS)
                .map(|_| Mutex::new(MemoShard::default()))
                .collect(),
            shard_cap: budget.map_or(usize::MAX, |b| b.div_ceil(Self::SHARDS * 2).max(1)),
            disk,
        }
    }

    fn shard(&self, key: (u64, u64)) -> &Mutex<MemoShard> {
        &self.shards[(key.0 as usize) % Self::SHARDS]
    }

    fn get(&self, key: (u64, u64)) -> Option<u64> {
        let mut shard = self.shard(key).lock().expect("memo shard poisoned");
        if let Some(&count) = shard.cur.get(&key) {
            return Some(count);
        }
        // Promote by *moving*: a hit from the old generation re-enters the
        // young one, so hot entries survive the next rotation (the standard
        // two-generation refinement). Removing it from `prev` keeps the
        // eviction count honest — a promoted entry is resident, not
        // dropped, when its old generation retires. Promotion may itself
        // rotate, which is fine: the value is already copied out.
        if let Some(count) = shard.prev.remove(&key) {
            self.insert_locked(&mut shard, key, count);
            return Some(count);
        }
        // Double miss: consult the spilled generations, newest first (a
        // re-spilled hot entry supersedes its older copies — the values are
        // identical anyway, counts are deterministic per configuration).
        let disk = self.disk.as_ref()?;
        for run in shard.runs.iter().rev() {
            if let Some(count) = MemoDisk::probe(run, key) {
                disk.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.insert_locked(&mut shard, key, count);
                return Some(count);
            }
        }
        None
    }

    fn insert(&self, key: (u64, u64), count: u64) {
        let mut shard = self.shard(key).lock().expect("memo shard poisoned");
        self.insert_locked(&mut shard, key, count);
    }

    fn insert_locked(&self, shard: &mut MemoShard, key: (u64, u64), count: u64) {
        if shard.cur.len() >= self.shard_cap && !shard.cur.contains_key(&key) {
            let full = std::mem::take(&mut shard.cur);
            let dropped = std::mem::replace(&mut shard.prev, full);
            if let Some(disk) = &self.disk {
                if !dropped.is_empty() {
                    shard.runs.push(disk.spill(&dropped));
                }
            }
            shard.evicted += dropped.len();
        }
        shard.cur.insert(key, count);
    }

    fn evictions(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("memo shard poisoned").evicted)
            .sum()
    }

    fn disk_hits(&self) -> usize {
        self.disk
            .as_ref()
            .map_or(0, |d| d.disk_hits.load(Ordering::Relaxed))
    }
}

/// Progress counters shared by all workers of one exploration.
struct Progress {
    leaves: AtomicUsize,
    abort: AtomicBool,
    /// Lowest canonical subtree index with a violation so far.
    min_violation: AtomicUsize,
    max_leaves: usize,
    memo: Memo,
}

impl Progress {
    fn new(cfg: &ExploreConfig) -> Self {
        Progress {
            leaves: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
            min_violation: AtomicUsize::new(usize::MAX),
            max_leaves: cfg.max_leaves,
            memo: Memo::new(cfg.memo_budget, cfg.disk_dir.as_deref()),
        }
    }

    /// Adds `n` leaves; returns true if the global budget is now exhausted.
    /// Saturating: astronomically large memoized subtree counts must not
    /// wrap the counter past the budget check.
    fn add_leaves(&self, n: usize) -> bool {
        let total = self
            .leaves
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                Some(t.saturating_add(n))
            })
            .expect("fetch_update closure always returns Some")
            .saturating_add(n);
        // `usize::MAX` means unbounded: saturation there is not exhaustion.
        if self.max_leaves != usize::MAX && total >= self.max_leaves {
            self.abort.store(true, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn report_violation(&self, subtree: usize) {
        self.min_violation.fetch_min(subtree, Ordering::Relaxed);
    }

    /// Whether work on subtree `index` is moot (budget exhausted, or a
    /// violation exists in an earlier subtree).
    fn moot(&self, index: usize) -> bool {
        self.abort.load(Ordering::Relaxed) || self.min_violation.load(Ordering::Relaxed) < index
    }
}

/// Canonical encoding of an operation outcome for visited-set keys.
fn outcome_key(o: &Outcome) -> (u8, u64) {
    match *o {
        Outcome::Completed(w) => (0, w),
        Outcome::RecoveredFail => (1, 0),
        Outcome::Pending => (2, 0),
        Outcome::Unresolved => (3, 0),
    }
}

/// Dense rank of history index `i` within the sorted endpoint list
/// (`u64::MAX` for the unresolved sentinel).
fn rank_of(endpoints: &[usize], i: usize) -> u64 {
    if i == usize::MAX {
        u64::MAX
    } else {
        endpoints.binary_search(&i).expect("endpoint present") as u64
    }
}

/// Candidate orderings are capped: enumerating a huge tie class (only the
/// empty-history root of a wide symmetric workload produces one) would
/// cost more than the merges it wins. Falling back to the base ordering
/// merely *misses* merges — never fabricates one.
const MAX_ORBIT_CANDIDATES: usize = 24;

/// All orderings obtained from `order` by permuting within runs of equal
/// signatures, up to [`MAX_ORBIT_CANDIDATES`]; just `order` when the
/// product of tie-class factorials exceeds the cap.
fn tie_candidates(order: &[usize], sigs: &[Vec<Word>]) -> Vec<Vec<usize>> {
    // Bound the total up front: the product of tie-class factorials must
    // fit the cap *before* any class is materialized, so a wide tie class
    // (a many-process empty-history root) costs nothing, not k! discarded
    // allocations.
    let classes: Vec<(usize, usize)> = {
        let mut out = Vec::new();
        let mut start = 0;
        while start < order.len() {
            let mut end = start + 1;
            while end < order.len() && sigs[order[end]] == sigs[order[start]] {
                end += 1;
            }
            out.push((start, end));
            start = end;
        }
        out
    };
    let mut total = 1usize;
    for &(start, end) in &classes {
        for k in 2..=(end - start) {
            total = total.saturating_mul(k);
        }
        if total > MAX_ORBIT_CANDIDATES {
            return vec![order.to_vec()];
        }
    }
    let mut candidates = vec![order.to_vec()];
    for &(start, end) in &classes {
        if end - start < 2 {
            continue;
        }
        let mut extended = Vec::new();
        for candidate in &candidates {
            for class_perm in permutations(&candidate[start..end]) {
                let mut c = candidate.clone();
                c[start..end].copy_from_slice(&class_perm);
                extended.push(c);
            }
        }
        candidates = extended;
    }
    candidates
}

/// All permutations of a small slice (Heap's algorithm).
fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    fn heaps(work: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(work.clone());
            return;
        }
        for i in 0..k {
            heaps(work, k - 1, out);
            if k.is_multiple_of(2) {
                work.swap(i, k - 1);
            } else {
                work.swap(0, k - 1);
            }
        }
    }
    let mut work = items.to_vec();
    let mut out = Vec::new();
    let k = work.len();
    heaps(&mut work, k, &mut out);
    out
}

/// One DFS frame: a configuration, its remaining actions, and the memory
/// checkpoint that entering it opened.
struct Frame {
    node: Node,
    acts: Vec<Action>,
    next: usize,
    cp: Option<Checkpoint>,
    key: Option<(u64, u64)>,
    entry_leaves: usize,
}

/// Per-worker sequential search engine.
struct Engine<'a> {
    obj: &'a dyn RecoverableObject,
    cfg: &'a ExploreConfig,
    source: OpSource<'a>,
    retry: RetryPolicy,
    progress: &'a Progress,
    /// This worker's canonical subtree index (for violation ordering).
    subtree: usize,
    /// Whether canonical orbit fingerprints are in use (probed once by
    /// [`explore_engine`]; requires object + layout permutation support).
    sym: bool,
    stack: Vec<Frame>,
    key_scratch: Vec<Word>,
    sym_words: Vec<Word>,
    sym_words_min: Vec<Word>,
    sym_nvm: Vec<Word>,
    sym_nvm_min: Vec<Word>,
    leaves: usize,
    truncated: bool,
    violation: Option<Violation>,
    unique_nodes: usize,
    memo_hits: usize,
}

impl<'a> Engine<'a> {
    fn new(
        obj: &'a dyn RecoverableObject,
        cfg: &'a ExploreConfig,
        source: OpSource<'a>,
        progress: &'a Progress,
        subtree: usize,
        sym: bool,
    ) -> Self {
        Engine {
            obj,
            cfg,
            source,
            retry: RetryPolicy {
                retry_on_fail: cfg.retry_on_fail,
                max_retries: cfg.max_retries,
                reset_per_op: false,
            },
            progress,
            subtree,
            sym,
            stack: Vec::new(),
            key_scratch: Vec::new(),
            sym_words: Vec::new(),
            sym_words_min: Vec::new(),
            sym_nvm: Vec::new(),
            sym_nvm_min: Vec::new(),
            leaves: 0,
            truncated: false,
            violation: None,
            unique_nodes: 0,
            memo_hits: 0,
        }
    }

    fn aborted(&self) -> bool {
        self.violation.is_some() || self.truncated || self.progress.moot(self.subtree)
    }

    /// Explores the whole subtree rooted at `root` over `mem`, leaving the
    /// memory exactly as it was on entry.
    fn run(&mut self, mem: &SimMemory, root: Node) {
        let outer = mem.checkpoint();
        self.enter(mem, root, None);
        while !self.stack.is_empty() {
            if self.aborted() {
                break;
            }
            let top = self.stack.last_mut().expect("stack non-empty");
            if top.next < top.acts.len() {
                let action = top.acts[top.next];
                top.next += 1;
                let cp = mem.checkpoint();
                let mut child = top.node.clone();
                self.apply(mem, &mut child, action);
                self.enter(mem, child, Some(cp));
            } else {
                let frame = self.stack.pop().expect("stack non-empty");
                if let Some(key) = frame.key {
                    self.progress
                        .memo
                        .insert(key, (self.leaves - frame.entry_leaves) as u64);
                }
                if let Some(cp) = frame.cp {
                    mem.rollback(cp);
                }
            }
        }
        // Abort unwind: rewind the memory without memoizing partial counts.
        while let Some(frame) = self.stack.pop() {
            if let Some(cp) = frame.cp {
                mem.rollback(cp);
            }
        }
        mem.rollback(outer);
    }

    /// Processes a freshly reached configuration: memo lookup, leaf check,
    /// or push as a new DFS frame.
    fn enter(&mut self, mem: &SimMemory, node: Node, cp: Option<Checkpoint>) {
        if self.aborted() {
            if let Some(cp) = cp {
                mem.rollback(cp);
            }
            return;
        }
        let key = self.cfg.prune.then(|| {
            if self.sym && !node.driver.any_in_flight() {
                // Machine-free boundary configurations canonicalize under
                // pid permutation; in-flight machines may hold
                // pid-dependent volatile state the object hook cannot
                // rename, so those nodes keep the plain fingerprint.
                self.canonical_key(mem, &node)
            } else {
                self.node_key(mem, &node)
            }
        });
        if let Some(k) = key {
            if let Some(count) = self.progress.memo.get(k) {
                self.memo_hits += 1;
                self.count_leaves(count as usize);
                if let Some(cp) = cp {
                    mem.rollback(cp);
                }
                return;
            }
        }
        self.unique_nodes += 1;
        let acts = actions(self.cfg, self.source, &node);
        if acts.is_empty() {
            self.count_leaves(1);
            self.check_leaf(&node);
            // Violating configurations must never enter the memo: a memo
            // hit skips check_leaf, which would let a converging prefix in
            // another subtree silently count a violating leaf as checked —
            // and make the reported violation depend on thread scheduling.
            if self.violation.is_none() {
                if let Some(k) = key {
                    self.progress.memo.insert(k, 1);
                }
            }
            if let Some(cp) = cp {
                mem.rollback(cp);
            }
            return;
        }
        self.stack.push(Frame {
            node,
            acts,
            next: 0,
            cp,
            key,
            entry_leaves: self.leaves,
        });
    }

    fn count_leaves(&mut self, n: usize) {
        self.leaves = self.leaves.saturating_add(n);
        if self.progress.add_leaves(n) {
            self.truncated = true;
        }
    }

    /// The full durable-linearizability + detectability check of one
    /// complete execution (relaxed for non-detectable objects — see
    /// [`check_execution`]).
    fn check_leaf(&mut self, node: &Node) {
        if let Err(v) = check_execution(self.obj, node.driver.history()) {
            self.violation = Some(v);
            self.progress.report_violation(self.subtree);
        }
    }

    /// Compiles the node's history into checker records plus the sorted
    /// endpoint list used for dense interval ranking — exactly the
    /// structure the leaf check will consume.
    fn compiled_records(&self, node: &Node) -> (Vec<OpRecord>, Vec<usize>) {
        let history = node.driver.history();
        let records = if self.obj.detectable() {
            history.to_records()
        } else {
            history.to_records_relaxed()
        };
        let mut endpoints: Vec<usize> = records
            .iter()
            .flat_map(|r| [r.invoked_at, r.resolved_at])
            .filter(|&i| i != usize::MAX)
            .collect();
        endpoints.sort_unstable();
        (records, endpoints)
    }

    /// 128-bit fingerprint of a configuration: memory state hash, driver
    /// volatile state, workload positions, crash budget, and the
    /// *canonicalized* history.
    ///
    /// The leaf check is path-sensitive, so two nodes are interchangeable
    /// only when their recorded pasts agree **as far as the checker can
    /// tell**. The checker consumes only the compiled [`OpRecord`]s — per
    /// operation: process, op, outcome, and the relative order of interval
    /// endpoints — never the raw event sequence (crashes are dropped by the
    /// compilation; their effects live entirely in the memory/driver
    /// state). Hashing that canonical structure instead of the event list
    /// soundly merges prefixes that differ only in the order of commuting
    /// events (two adjacent invocations by different processes, two
    /// adjacent returns, a crash's position between resolved operations),
    /// which is where most of the interleaving explosion lives.
    ///
    /// [`OpRecord`]: crate::history::OpRecord
    fn node_key(&mut self, mem: &SimMemory, node: &Node) -> (u64, u64) {
        self.key_scratch.clear();
        node.driver.encode_key(&mut self.key_scratch);
        let (records, endpoints) = self.compiled_records(node);

        let mut halves = [0u64; 2];
        for (salt, half) in halves.iter_mut().enumerate() {
            let mut h = DefaultHasher::new();
            (salt as u64).hash(&mut h);
            mem.state_hash().hash(&mut h);
            self.key_scratch.hash(&mut h);
            node.next_op.hash(&mut h);
            node.script_pos.hash(&mut h);
            node.crashes_used.hash(&mut h);
            records.len().hash(&mut h);
            for r in &records {
                r.pid.hash(&mut h);
                op_key(&r.op).hash(&mut h);
                outcome_key(&r.outcome).hash(&mut h);
                rank_of(&endpoints, r.invoked_at).hash(&mut h);
                rank_of(&endpoints, r.resolved_at).hash(&mut h);
            }
            *half = h.finish();
        }
        (halves[0], halves[1])
    }

    /// 128-bit fingerprint of a machine-free configuration's **symmetry
    /// orbit**: the canonical representative under process-id permutation.
    ///
    /// Two configurations related by a permutation π applied consistently
    /// everywhere — per-process driver state, retry counts, remaining
    /// workload, private memory (relocated), pid-dependent shared encodings
    /// (rewritten by [`RecoverableObject::permute_memory`]), and the
    /// history (pids renamed) — have isomorphic futures: π is a bijection
    /// between their subtrees' executions, and the checker is
    /// pid-oblivious (specs never consult process ids), so leaf counts and
    /// violation-freeness coincide. Mapping every orbit member to one
    /// canonical key lets the pruning memo expand a single member and
    /// account the rest by count, with totals identical to the unreduced
    /// search.
    ///
    /// Canonicalization: sort processes by a pid-independent signature
    /// (life-cycle stage, retries, remaining operations, history
    /// projection with global interval ranks); processes tying on the
    /// signature can differ only in pid-dependent memory encodings, so the
    /// tie-break enumerates their permutations (capped — missing a merge
    /// is sound, a wrong merge is not) and takes the lexicographically
    /// minimal canonical memory. In shared-cache mode the `(NVM, logical)`
    /// word pair is canonicalized — together they determine dirty values
    /// and the dirty set, everything a future crash or persist can see.
    fn canonical_key(&mut self, mem: &SimMemory, node: &Node) -> (u64, u64) {
        let n = node.driver.processes();
        let (records, endpoints) = self.compiled_records(node);

        // Pid-independent per-process signatures.
        let mut sigs: Vec<Vec<Word>> = vec![Vec::new(); n];
        for (i, sig) in sigs.iter_mut().enumerate() {
            match node.driver.state(i) {
                ProcState::Idle => sig.push(0),
                ProcState::Done => sig.push(1),
                ProcState::NeedRecovery { op } => {
                    sig.push(2);
                    sig.push(op_key(op));
                }
                ProcState::Running { .. } | ProcState::Recovering { .. } => {
                    unreachable!("canonical keys are computed for machine-free nodes only")
                }
            }
            sig.push(node.driver.retries(i) as Word);
            if let OpSource::PerProcess(w) = self.source {
                let remaining = &w[i][node.next_op[i]..];
                sig.push(remaining.len() as Word);
                sig.extend(remaining.iter().map(op_key));
            }
            for r in records.iter().filter(|r| r.pid.idx() == i) {
                sig.push(op_key(&r.op));
                let (tag, word) = outcome_key(&r.outcome);
                sig.push(Word::from(tag));
                sig.push(word);
                sig.push(rank_of(&endpoints, r.invoked_at));
                sig.push(rank_of(&endpoints, r.resolved_at));
            }
        }

        // Stable sort fixes the canonical slot of every distinct
        // signature; tie classes (identical signatures — necessarily
        // history-free, since interval ranks are globally unique) get
        // their orderings enumerated below.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| sigs[a].cmp(&sigs[b]));
        let candidates = tie_candidates(&order, &sigs);

        let shared_cache = mem.mode() == CacheMode::SharedCache;
        let mut perm = vec![0u32; n];
        let mut perm_min = vec![0u32; n];
        let mut have_min = false;
        for candidate in &candidates {
            for (slot, &old) in candidate.iter().enumerate() {
                perm[old] = slot as u32;
            }
            let ok = mem.logical_words_permuted(&perm, true, &mut self.sym_words)
                && self.obj.permute_memory(&mut self.sym_words, &perm);
            debug_assert!(ok, "support was probed before the search started");
            if shared_cache {
                let ok = mem.logical_words_permuted(&perm, false, &mut self.sym_nvm)
                    && self.obj.permute_memory(&mut self.sym_nvm, &perm);
                debug_assert!(ok, "support was probed before the search started");
            }
            if !have_min
                || (self.sym_words.as_slice(), self.sym_nvm.as_slice())
                    < (self.sym_words_min.as_slice(), self.sym_nvm_min.as_slice())
            {
                have_min = true;
                std::mem::swap(&mut self.sym_words, &mut self.sym_words_min);
                std::mem::swap(&mut self.sym_nvm, &mut self.sym_nvm_min);
                perm_min.copy_from_slice(&perm);
            }
        }

        let mut halves = [0u64; 2];
        for (salt, half) in halves.iter_mut().enumerate() {
            let mut h = DefaultHasher::new();
            (salt as u64).hash(&mut h);
            // Scheme discriminator: canonical keys share the memo with
            // plain keys and must never collide with them structurally.
            0x53_59_4d_4du64.hash(&mut h);
            node.crashes_used.hash(&mut h);
            for &i in &order {
                sigs[i].hash(&mut h);
            }
            self.sym_words_min.hash(&mut h);
            if shared_cache {
                self.sym_nvm_min.hash(&mut h);
            }
            records.len().hash(&mut h);
            for r in &records {
                perm_min[r.pid.idx()].hash(&mut h);
                op_key(&r.op).hash(&mut h);
                outcome_key(&r.outcome).hash(&mut h);
                rank_of(&endpoints, r.invoked_at).hash(&mut h);
                rank_of(&endpoints, r.resolved_at).hash(&mut h);
            }
            *half = h.finish();
        }
        (halves[0], halves[1])
    }

    /// Executes one scheduler action, mutating `node` and the memory.
    fn apply(&mut self, mem: &SimMemory, node: &mut Node, action: Action) {
        // In full-interleaving mode, private-only step runs merge into one
        // action (partial-order reduction); scripted explorations keep
        // crash granularity at single primitives.
        let merge = matches!(self.source, OpSource::PerProcess(_));
        match action {
            Action::Crash => {
                node.crashes_used += 1;
                node.driver.crash(mem, self.cfg.crash_policy);
            }
            Action::Proc(i) => {
                if node.driver.state(i).is_idle() {
                    let op = match self.source {
                        OpSource::PerProcess(w) => {
                            let op = w[i][node.next_op[i]];
                            node.next_op[i] += 1;
                            op
                        }
                        OpSource::Script(script) => {
                            let (_, op) = script[node.script_pos];
                            node.script_pos += 1;
                            op
                        }
                    };
                    node.driver.invoke(self.obj, mem, i, op, &self.retry);
                } else if merge {
                    node.driver.step_merged(self.obj, mem, i, &self.retry);
                } else {
                    node.driver.step(self.obj, mem, i, &self.retry);
                }
            }
        }
    }
}

/// Exhaustively explores executions of `obj` and checks every complete one.
///
/// The memory must be freshly initialized; it is left in its starting state
/// on return. See the [module docs](self) for the engine design and the
/// determinism guarantees of parallel runs.
pub fn explore_engine(
    obj: &dyn RecoverableObject,
    mem: &SimMemory,
    source: OpSource<'_>,
    cfg: &ExploreConfig,
) -> ExploreOutcome {
    let root = Node::root(obj.processes());
    let progress = Progress::new(cfg);
    let sym = symmetry_supported(obj, mem, source, cfg);
    if cfg.parallelism <= 1 {
        let mut engine = Engine::new(obj, cfg, source, &progress, 0, sym);
        engine.run(mem, root);
        return ExploreOutcome {
            leaves: engine.leaves.min(cfg.max_leaves),
            violation: engine.violation,
            truncated: engine.truncated,
            unique_nodes: engine.unique_nodes,
            memo_hits: engine.memo_hits,
            symmetry: sym,
            memo_evictions: progress.memo.evictions(),
            memo_disk_hits: progress.memo.disk_hits(),
            sched: SchedStats::default(),
        };
    }
    explore_parallel(obj, mem, source, cfg, root, &progress, sym)
}

/// Whether symmetry reduction is both requested and available: pruning on,
/// `SymmetryMode::On` (the `Auto` default resolves at the [`Scenario`]
/// layer; at the engine it means off), a per-process source with ≥ 2
/// processes, and an object + layout that support permutation — probed
/// with the identity, which every supporting implementation accepts.
///
/// [`Scenario`]: crate::Scenario
fn symmetry_supported(
    obj: &dyn RecoverableObject,
    mem: &SimMemory,
    source: OpSource<'_>,
    cfg: &ExploreConfig,
) -> bool {
    if !cfg.prune
        || cfg.symmetry != SymmetryMode::On
        || !matches!(source, OpSource::PerProcess(_))
        || obj.processes() < 2
    {
        return false;
    }
    // RandomSubset draws per-cell survival along the cache's index-order
    // iteration, so which dirty cells persist is not equivariant under
    // relocation — the same scan-order hazard that keeps the max register
    // opaque. DropAll / PersistAll treat every cell uniformly and are fine.
    if mem.mode() == CacheMode::SharedCache
        && matches!(cfg.crash_policy, CrashPolicy::RandomSubset(_))
    {
        return false;
    }
    let identity: Vec<u32> = (0..obj.processes()).collect();
    let mut scratch = Vec::new();
    mem.logical_words_permuted(&identity, true, &mut scratch)
        && obj.permute_memory(&mut scratch, &identity)
}

/// A frontier entry: a subtree root plus the forked memory it runs on.
struct SubtreeJob {
    index: usize,
    node: Node,
    mem: SimMemory,
}

struct SubtreeResult {
    index: usize,
    leaves: usize,
    violation: Option<Violation>,
    truncated: bool,
    unique_nodes: usize,
    memo_hits: usize,
}

fn explore_parallel(
    obj: &dyn RecoverableObject,
    mem: &SimMemory,
    source: OpSource<'_>,
    cfg: &ExploreConfig,
    root: Node,
    progress: &Progress,
    sym: bool,
) -> ExploreOutcome {
    // Expand a frontier of subtree roots in canonical depth-first order,
    // wave by wave, each on its own memory fork. Leaves reached during
    // expansion stay in the list and are evaluated in place.
    let target = cfg.parallelism * 4;
    enum Entry {
        Leaf(Node),
        Subtree(Node, Box<SimMemory>),
    }
    let mut frontier: Vec<Entry> = vec![Entry::Subtree(root, Box::new(mem.fork()))];
    // Wave cap: a path-shaped tree (e.g. a crash-free script) never widens,
    // so expansion must not chase the target forever.
    for _wave in 0..16 {
        let interior = frontier
            .iter()
            .filter(|e| matches!(e, Entry::Subtree(..)))
            .count();
        if interior == 0 || frontier.len() >= target {
            break;
        }
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for entry in frontier {
            match entry {
                Entry::Leaf(n) => next.push(Entry::Leaf(n)),
                Entry::Subtree(node, fork) => {
                    let acts = actions(cfg, source, &node);
                    if acts.is_empty() {
                        next.push(Entry::Leaf(node));
                        continue;
                    }
                    // A throwaway engine applies each action on a child fork.
                    for action in acts {
                        let child_mem = fork.fork();
                        let mut child = node.clone();
                        let mut scratch = Engine::new(obj, cfg, source, progress, usize::MAX, sym);
                        scratch.apply(&child_mem, &mut child, action);
                        next.push(Entry::Subtree(child, Box::new(child_mem)));
                    }
                }
            }
        }
        frontier = next;
    }

    // Evaluate the frontier: leaves in place (cheap), subtrees on workers,
    // round-robin in canonical order.
    let mut results: Vec<SubtreeResult> = Vec::new();
    let mut jobs: Vec<SubtreeJob> = Vec::new();
    for (index, entry) in frontier.into_iter().enumerate() {
        match entry {
            Entry::Leaf(node) => {
                let mut engine = Engine::new(obj, cfg, source, progress, index, sym);
                engine.count_leaves(1);
                engine.check_leaf(&node);
                results.push(SubtreeResult {
                    index,
                    leaves: engine.leaves,
                    violation: engine.violation,
                    truncated: engine.truncated,
                    unique_nodes: 1,
                    memo_hits: 0,
                });
            }
            Entry::Subtree(node, fork) => jobs.push(SubtreeJob {
                index,
                node,
                mem: *fork,
            }),
        }
    }

    // Subtree jobs run on the shared work-stealing scheduler (the same
    // substrate as the census BFS): seeded round-robin, idle workers steal
    // from siblings' fronts, and each worker handle doubles as the panic
    // guard — a worker that unwinds aborts the scheduler so its siblings
    // drain out and `thread::scope` propagates the original panic instead
    // of hanging. Subtrees never spawn new jobs, so the deques only drain;
    // canonical merge order is restored by the index sort below.
    let workers = cfg.parallelism.min(jobs.len().max(1));
    let sched: Scheduler<SubtreeJob> = Scheduler::new(workers);
    sched.seed(jobs);
    let done = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for id in 0..workers {
            let sched = &sched;
            let done = &done;
            s.spawn(move || {
                let mut worker = sched.worker(id);
                let mut out = Vec::new();
                while let Some(job) = worker.next() {
                    if !progress.moot(job.index) {
                        let mut engine = Engine::new(obj, cfg, source, progress, job.index, sym);
                        engine.run(&job.mem, job.node);
                        out.push(SubtreeResult {
                            index: job.index,
                            leaves: engine.leaves,
                            violation: engine.violation,
                            truncated: engine.truncated,
                            unique_nodes: engine.unique_nodes,
                            memo_hits: engine.memo_hits,
                        });
                    }
                    worker.complete();
                }
                done.lock().expect("result sink poisoned").append(&mut out);
            });
        }
    });
    results.extend(done.into_inner().expect("result sink poisoned"));
    results.sort_by_key(|r| r.index);
    let sched_stats = sched.stats();

    // Merge in canonical order: the first violating subtree wins.
    let mut leaves = 0usize;
    let mut violation = None;
    let mut truncated = false;
    let mut unique_nodes = 0;
    let mut memo_hits = 0;
    for r in results {
        leaves = leaves.saturating_add(r.leaves);
        truncated |= r.truncated;
        unique_nodes += r.unique_nodes;
        memo_hits += r.memo_hits;
        if violation.is_none() {
            violation = r.violation;
        }
    }
    ExploreOutcome {
        leaves: leaves.min(cfg.max_leaves),
        violation,
        truncated,
        unique_nodes,
        memo_hits,
        symmetry: sym,
        memo_evictions: progress.memo.evictions(),
        memo_disk_hits: progress.memo.disk_hits(),
        sched: sched_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::build_world;
    use detectable::{DetectableCas, DetectableRegister, MaxRegister};

    #[test]
    fn script_register_with_one_crash_is_clean() {
        let (reg, mem) = build_world(|b| DetectableRegister::new(b, 2, 0));
        let p = Pid::new(0);
        let q = Pid::new(1);
        let script = [
            (p, OpSpec::Write(1)),
            (q, OpSpec::Read),
            (q, OpSpec::Write(2)),
            (p, OpSpec::Write(1)),
            (q, OpSpec::Read),
        ];
        let out = explore_engine(
            &reg,
            &mem,
            OpSource::Script(&script),
            &ExploreConfig::default(),
        );
        out.assert_clean();
        assert!(
            out.leaves > 10,
            "expected many crash positions, got {}",
            out.leaves
        );
    }

    #[test]
    fn script_cas_with_one_crash_is_clean() {
        let (cas, mem) = build_world(|b| DetectableCas::new(b, 2, 0));
        let p = Pid::new(0);
        let q = Pid::new(1);
        let script = [
            (p, OpSpec::Cas { old: 0, new: 1 }),
            (q, OpSpec::Cas { old: 1, new: 0 }),
            (p, OpSpec::Cas { old: 0, new: 1 }),
            (q, OpSpec::Read),
        ];
        let out = explore_engine(
            &cas,
            &mem,
            OpSource::Script(&script),
            &ExploreConfig::default(),
        );
        out.assert_clean();
    }

    #[test]
    fn concurrent_writes_all_interleavings_crash_free() {
        let (reg, mem) = build_world(|b| DetectableRegister::new(b, 2, 0));
        let w = vec![vec![OpSpec::Write(1), OpSpec::Read], vec![OpSpec::Write(2)]];
        let cfg = ExploreConfig {
            max_crashes: 0,
            ..Default::default()
        };
        let out = explore_engine(&reg, &mem, OpSource::PerProcess(&w), &cfg);
        out.assert_clean();
        assert!(out.leaves > 100);
    }

    #[test]
    fn concurrent_cas_all_interleavings_one_crash() {
        let (cas, mem) = build_world(|b| DetectableCas::new(b, 2, 0));
        let w = vec![
            vec![OpSpec::Cas { old: 0, new: 1 }],
            vec![OpSpec::Cas { old: 0, new: 2 }],
        ];
        let out = explore_engine(
            &cas,
            &mem,
            OpSource::PerProcess(&w),
            &ExploreConfig::default(),
        );
        out.assert_clean();
    }

    #[test]
    fn max_register_explorations_are_clean() {
        let (mr, mem) = build_world(|b| MaxRegister::new(b, 2));
        let w = vec![
            vec![OpSpec::WriteMax(2), OpSpec::Read],
            vec![OpSpec::WriteMax(1)],
        ];
        let out = explore_engine(
            &mr,
            &mem,
            OpSource::PerProcess(&w),
            &ExploreConfig::default(),
        );
        out.assert_clean();
    }

    #[test]
    fn leaf_budget_truncates() {
        let (reg, mem) = build_world(|b| DetectableRegister::new(b, 2, 0));
        let w = vec![vec![OpSpec::Write(1)], vec![OpSpec::Write(2)]];
        let cfg = ExploreConfig {
            max_leaves: 5,
            max_crashes: 0,
            ..Default::default()
        };
        let out = explore_engine(&reg, &mem, OpSource::PerProcess(&w), &cfg);
        assert!(out.truncated);
        assert_eq!(out.leaves, 5);
    }

    #[test]
    fn memory_is_restored_after_exploration() {
        let (reg, mem) = build_world(|b| DetectableRegister::new(b, 2, 0));
        let before = mem.shared_key();
        let w = vec![vec![OpSpec::Write(9)], vec![]];
        let cfg = ExploreConfig {
            max_crashes: 0,
            ..Default::default()
        };
        let _ = explore_engine(&reg, &mem, OpSource::PerProcess(&w), &cfg);
        assert_eq!(mem.shared_key(), before);
    }

    #[test]
    fn pruning_preserves_leaf_counts() {
        let (cas, mem) = build_world(|b| DetectableCas::new(b, 2, 0));
        let w = vec![
            vec![OpSpec::Cas { old: 0, new: 1 }],
            vec![OpSpec::Cas { old: 0, new: 2 }],
        ];
        let pruned = explore_engine(
            &cas,
            &mem,
            OpSource::PerProcess(&w),
            &ExploreConfig {
                prune: true,
                ..Default::default()
            },
        );
        let unpruned = explore_engine(
            &cas,
            &mem,
            OpSource::PerProcess(&w),
            &ExploreConfig {
                prune: false,
                ..Default::default()
            },
        );
        pruned.assert_clean();
        unpruned.assert_clean();
        assert_eq!(pruned.leaves, unpruned.leaves);
        assert!(
            pruned.unique_nodes < unpruned.unique_nodes,
            "pruning expanded {} nodes vs {} unpruned",
            pruned.unique_nodes,
            unpruned.unique_nodes
        );
        assert!(pruned.memo_hits > 0);
    }

    #[test]
    fn parallel_exploration_matches_sequential() {
        let (reg, mem) = build_world(|b| DetectableRegister::new(b, 2, 0));
        let w = vec![vec![OpSpec::Write(1), OpSpec::Read], vec![OpSpec::Write(2)]];
        let base = ExploreConfig::default();
        let seq = explore_engine(&reg, &mem, OpSource::PerProcess(&w), &base);
        for parallelism in [2, 4, 7] {
            let par = explore_engine(
                &reg,
                &mem,
                OpSource::PerProcess(&w),
                &ExploreConfig {
                    parallelism,
                    ..base.clone()
                },
            );
            assert_eq!(par.leaves, seq.leaves, "parallelism {parallelism}");
            assert_eq!(par.truncated, seq.truncated);
            assert!(par.violation.is_none());
        }
    }

    #[test]
    fn parallel_exploration_finds_the_same_violation() {
        // A deprived register violates Theorem 2; every parallelism level
        // must find a violation (the canonical-first one).
        use crate::aux_state::theorem2_script;
        use detectable::ObjectKind;
        let script = theorem2_script(ObjectKind::Register);
        let render = |parallelism: usize| {
            let (reg, mem) =
                build_world(|b| baselines::WithoutPrepare::new(DetectableRegister::new(b, 2, 0)));
            let cfg = ExploreConfig {
                parallelism,
                ..Default::default()
            };
            let out = explore_engine(&reg, &mem, OpSource::Script(&script), &cfg);
            out.violation
                .expect("Theorem 2 predicts a violation")
                .rendered
        };
        let sequential = render(1);
        assert_eq!(render(2), sequential);
        assert_eq!(render(5), sequential);
    }

    #[test]
    fn symmetry_reduction_preserves_totals_and_shrinks_the_search() {
        // Three identical processes: the orbit of "who acts first" merges.
        let (cas, mem) = build_world(|b| DetectableCas::new(b, 3, 0));
        let w = vec![
            vec![OpSpec::Cas { old: 0, new: 1 }],
            vec![OpSpec::Cas { old: 0, new: 1 }],
            vec![OpSpec::Cas { old: 0, new: 1 }],
        ];
        let base = ExploreConfig {
            max_crashes: 1,
            max_retries: 1,
            max_leaves: usize::MAX,
            ..Default::default()
        };
        let plain = explore_engine(&cas, &mem, OpSource::PerProcess(&w), &base);
        let reduced = explore_engine(
            &cas,
            &mem,
            OpSource::PerProcess(&w),
            &ExploreConfig {
                symmetry: SymmetryMode::On,
                ..base
            },
        );
        plain.assert_clean();
        reduced.assert_clean();
        assert!(!plain.symmetry, "engine-level Auto means off");
        assert!(reduced.symmetry, "CAS + uniform layout support reduction");
        assert_eq!(reduced.leaves, plain.leaves, "totals are invariant");
        assert!(
            reduced.unique_nodes < plain.unique_nodes,
            "reduction expanded {} nodes vs {} plain",
            reduced.unique_nodes,
            plain.unique_nodes
        );
    }

    #[test]
    fn symmetry_reduction_composed_object_with_crashes() {
        use detectable::DetectableCounter;
        let (ctr, mem) = build_world(|b| DetectableCounter::new(b, 3));
        let w = vec![vec![OpSpec::Inc], vec![OpSpec::Inc], vec![OpSpec::Inc]];
        let base = ExploreConfig {
            max_crashes: 1,
            max_retries: 1,
            max_leaves: usize::MAX,
            ..Default::default()
        };
        let plain = explore_engine(&ctr, &mem, OpSource::PerProcess(&w), &base);
        let reduced = explore_engine(
            &ctr,
            &mem,
            OpSource::PerProcess(&w),
            &ExploreConfig {
                symmetry: SymmetryMode::On,
                ..base
            },
        );
        plain.assert_clean();
        reduced.assert_clean();
        assert!(reduced.symmetry);
        assert_eq!(reduced.leaves, plain.leaves);
        assert!(reduced.unique_nodes < plain.unique_nodes);
    }

    #[test]
    fn symmetry_never_activates_for_scripts_or_unsupported_objects() {
        let script = [(Pid::new(0), OpSpec::Write(1)), (Pid::new(1), OpSpec::Read)];
        let (reg, mem) = build_world(|b| DetectableRegister::new(b, 2, 0));
        let cfg = ExploreConfig {
            symmetry: SymmetryMode::On,
            max_leaves: usize::MAX,
            ..Default::default()
        };
        let out = explore_engine(&reg, &mem, OpSource::Script(&script), &cfg);
        out.assert_clean();
        assert!(!out.symmetry, "scripts pin the acting process");

        // The queue's arena encodes allocating pids in shared node indices;
        // it declares itself opaque and the engine falls back.
        let (q, mem) = build_world(|b| detectable::DetectableQueue::new(b, 2, 16));
        let w = vec![vec![OpSpec::Enq(1)], vec![OpSpec::Enq(1)]];
        let out = explore_engine(&q, &mem, OpSource::PerProcess(&w), &cfg);
        out.assert_clean();
        assert!(
            !out.symmetry,
            "unsupported objects fall back to plain search"
        );
    }

    #[test]
    fn memo_budget_eviction_preserves_exact_totals() {
        let (cas, mem) = build_world(|b| DetectableCas::new(b, 2, 0));
        let w = vec![
            vec![
                OpSpec::Cas { old: 0, new: 1 },
                OpSpec::Cas { old: 1, new: 2 },
            ],
            vec![OpSpec::Cas { old: 0, new: 2 }, OpSpec::Read],
        ];
        let unbounded = explore_engine(
            &cas,
            &mem,
            OpSource::PerProcess(&w),
            &ExploreConfig {
                memo_budget: None,
                ..Default::default()
            },
        );
        assert_eq!(unbounded.memo_evictions, 0);
        // A budget far below the unique-node count forces eviction cycles;
        // evicted states are re-explored, totals must not move.
        let tiny = explore_engine(
            &cas,
            &mem,
            OpSource::PerProcess(&w),
            &ExploreConfig {
                memo_budget: Some(128),
                ..Default::default()
            },
        );
        unbounded.assert_clean();
        tiny.assert_clean();
        assert!(
            tiny.memo_evictions > 0,
            "budget of 128 over {} unique nodes must evict",
            unbounded.unique_nodes
        );
        assert_eq!(tiny.leaves, unbounded.leaves);
        assert!(
            tiny.unique_nodes >= unbounded.unique_nodes,
            "eviction can only add re-exploration"
        );
    }

    #[test]
    fn memo_disk_tier_preserves_totals_and_serves_hits() {
        let (cas, mem) = build_world(|b| DetectableCas::new(b, 2, 0));
        let w = vec![
            vec![
                OpSpec::Cas { old: 0, new: 1 },
                OpSpec::Cas { old: 1, new: 2 },
            ],
            vec![OpSpec::Cas { old: 0, new: 2 }, OpSpec::Read],
        ];
        let unbounded = explore_engine(
            &cas,
            &mem,
            OpSource::PerProcess(&w),
            &ExploreConfig {
                memo_budget: None,
                ..Default::default()
            },
        );
        assert_eq!(unbounded.memo_disk_hits, 0, "no disk tier configured");
        let disk_dir =
            std::env::temp_dir().join(format!("explore-disk-test-{}", std::process::id()));
        std::fs::create_dir_all(&disk_dir).expect("test dir");
        let spilled = explore_engine(
            &cas,
            &mem,
            OpSource::PerProcess(&w),
            &ExploreConfig {
                memo_budget: Some(128),
                disk_dir: Some(disk_dir.clone()),
                ..Default::default()
            },
        );
        unbounded.assert_clean();
        spilled.assert_clean();
        assert_eq!(
            spilled.leaves, unbounded.leaves,
            "totals are disk-invariant"
        );
        assert!(
            spilled.memo_disk_hits > 0,
            "a budget of 128 over {} unique nodes must spill and re-hit",
            unbounded.unique_nodes
        );
        // Spilled pruning knowledge survives eviction: strictly less
        // re-exploration than the RAM-only budgeted run would need, never
        // more than the budgeted run's node count.
        assert!(spilled.unique_nodes >= unbounded.unique_nodes);
        // The unique memo subdirectory is removed when the run finishes.
        assert_eq!(
            std::fs::read_dir(&disk_dir).unwrap().count(),
            0,
            "memo run files must be cleaned up"
        );
        let _ = std::fs::remove_dir_all(&disk_dir);
    }

    #[test]
    fn parallel_symmetric_exploration_matches_sequential() {
        let (cas, mem) = build_world(|b| DetectableCas::new(b, 3, 0));
        let w = vec![
            vec![OpSpec::Cas { old: 0, new: 1 }],
            vec![OpSpec::Cas { old: 0, new: 1 }],
            vec![OpSpec::Cas { old: 0, new: 1 }],
        ];
        let base = ExploreConfig {
            symmetry: SymmetryMode::On,
            max_crashes: 1,
            max_retries: 1,
            max_leaves: usize::MAX,
            ..Default::default()
        };
        let seq = explore_engine(&cas, &mem, OpSource::PerProcess(&w), &base);
        for parallelism in [2, 4] {
            let par = explore_engine(
                &cas,
                &mem,
                OpSource::PerProcess(&w),
                &ExploreConfig {
                    parallelism,
                    ..base.clone()
                },
            );
            assert_eq!(par.leaves, seq.leaves, "parallelism {parallelism}");
            assert!(par.violation.is_none());
        }
    }

    #[test]
    fn script_mode_counts_match_with_and_without_pruning() {
        let (reg, mem) = build_world(|b| DetectableRegister::new(b, 2, 0));
        let script = [
            (Pid::new(0), OpSpec::Write(1)),
            (Pid::new(1), OpSpec::Read),
            (Pid::new(0), OpSpec::Write(2)),
        ];
        let a = explore_engine(
            &reg,
            &mem,
            OpSource::Script(&script),
            &ExploreConfig {
                max_crashes: 2,
                ..Default::default()
            },
        );
        let b = explore_engine(
            &reg,
            &mem,
            OpSource::Script(&script),
            &ExploreConfig {
                max_crashes: 2,
                prune: false,
                ..Default::default()
            },
        );
        a.assert_clean();
        b.assert_clean();
        assert_eq!(a.leaves, b.leaves);
    }
}
