//! Exhaustive state-space exploration for small configurations.
//!
//! Enumerates **every** interleaving of step-machine actions and every crash
//! point (within a crash budget), checking each complete execution with the
//! durable-linearizability + detectability checker. This is how the
//! reproduction machine-verifies Lemmas 1 and 2 at small scale, and how the
//! Theorem 2 experiment automatically finds the adversarial execution of
//! Figure 2 against no-auxiliary-state candidates.
//!
//! Two sources of work are supported:
//!
//! * [`Workload::PerProcess`] — each process has its own operation list; the
//!   explorer branches over *all* interleavings (use tiny configurations:
//!   the tree is exponential in total step count);
//! * [`Workload::Script`] — one global sequence of operations executed one
//!   at a time (no concurrency), but with crashes allowed between any two
//!   primitive steps. The Figure 2 construction is essentially sequential,
//!   so this mode finds it cheaply.

use detectable::{OpSpec, RecoverableObject};
use nvm::{CrashPolicy, Machine, Pid, Poll, SimMemory, RESP_FAIL};

use crate::history::{Event, History};
use crate::linearize::{check_history, Violation};

/// Where operations come from.
#[derive(Copy, Clone, Debug)]
pub enum Workload<'a> {
    /// `workload[p]` is the operation list of process `p`; all interleavings
    /// are explored.
    PerProcess(&'a [Vec<OpSpec>]),
    /// A single global sequence, executed one operation at a time.
    Script(&'a [(Pid, OpSpec)]),
}

/// Exploration parameters.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Maximum system-wide crashes per execution.
    pub max_crashes: usize,
    /// Re-invoke operations whose recovery said `fail` (bounded per process
    /// by `max_retries`).
    pub retry_on_fail: bool,
    /// Retry budget per process (prevents unbounded fail/retry chains when
    /// crashes keep arriving).
    pub max_retries: usize,
    /// Stop after this many complete executions (safety valve; reaching it
    /// is reported in the outcome).
    pub max_leaves: usize,
    /// Crash policy applied at each injected crash.
    pub crash_policy: CrashPolicy,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_crashes: 1,
            retry_on_fail: true,
            max_retries: 2,
            max_leaves: 5_000_000,
            crash_policy: CrashPolicy::DropAll,
        }
    }
}

/// The result of an exploration.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// Complete executions checked.
    pub leaves: usize,
    /// First violation found, if any.
    pub violation: Option<Violation>,
    /// Whether the leaf budget was exhausted (coverage incomplete).
    pub truncated: bool,
}

impl ExploreOutcome {
    /// Panics with the violation if one was found, and on truncation (test
    /// helper for fully exhaustive runs).
    pub fn assert_clean(&self) {
        self.assert_no_violation();
        assert!(!self.truncated, "exploration truncated at {} leaves", self.leaves);
    }

    /// Panics with the violation if one was found; tolerates truncation
    /// (test helper for *bounded*-exhaustive runs, where the DFS covers the
    /// first `max_leaves` executions systematically).
    pub fn assert_no_violation(&self) {
        if let Some(v) = &self.violation {
            panic!("exploration found a violation after {} leaves:\n{v}", self.leaves);
        }
    }
}

#[derive(Clone)]
enum PState {
    Idle,
    Running { op: OpSpec, m: Box<dyn Machine> },
    NeedRecovery { op: OpSpec },
    Recovering { op: OpSpec, m: Box<dyn Machine> },
}

#[derive(Clone)]
struct Node {
    procs: Vec<PState>,
    next_op: Vec<usize>,
    script_pos: usize,
    crashes_used: usize,
    retries: Vec<usize>,
    history: History,
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Action {
    Crash,
    Proc(usize),
}

struct Ctx<'a> {
    obj: &'a dyn RecoverableObject,
    mem: &'a SimMemory,
    cfg: &'a ExploreConfig,
    source: Workload<'a>,
    leaves: usize,
    violation: Option<Violation>,
    truncated: bool,
}

/// Exhaustively explores executions of `obj` and checks every complete one.
///
/// The memory must be freshly initialized; it is restored to its starting
/// state before returning.
pub fn explore(
    obj: &dyn RecoverableObject,
    mem: &SimMemory,
    source: Workload<'_>,
    cfg: &ExploreConfig,
) -> ExploreOutcome {
    let n = obj.processes() as usize;
    let root = Node {
        procs: vec![PState::Idle; n].iter().map(|_| PState::Idle).collect(),
        next_op: vec![0; n],
        script_pos: 0,
        crashes_used: 0,
        retries: vec![0; n],
        history: History::new(),
    };
    let mut ctx = Ctx {
        obj,
        mem,
        cfg,
        source,
        leaves: 0,
        violation: None,
        truncated: false,
    };
    let start = mem.snapshot();
    dfs(&mut ctx, &root);
    mem.restore(&start);
    ExploreOutcome {
        leaves: ctx.leaves,
        violation: ctx.violation,
        truncated: ctx.truncated,
    }
}

fn actions(ctx: &Ctx<'_>, node: &Node) -> Vec<Action> {
    let mut out = Vec::new();
    let in_flight = node
        .procs
        .iter()
        .any(|s| matches!(s, PState::Running { .. } | PState::Recovering { .. }));
    if in_flight && node.crashes_used < ctx.cfg.max_crashes {
        out.push(Action::Crash);
    }
    match ctx.source {
        Workload::PerProcess(w) => {
            for (i, st) in node.procs.iter().enumerate() {
                match st {
                    PState::Idle => {
                        if node.next_op[i] < w[i].len() {
                            out.push(Action::Proc(i));
                        }
                    }
                    _ => out.push(Action::Proc(i)),
                }
            }
        }
        Workload::Script(script) => {
            // One operation at a time: if some process is mid-operation (or
            // mid-recovery), only it may act; otherwise the script advances.
            if let Some(i) = node
                .procs
                .iter()
                .position(|s| !matches!(s, PState::Idle))
            {
                out.push(Action::Proc(i));
            } else if node.script_pos < script.len() {
                out.push(Action::Proc(script[node.script_pos].0.idx()));
            }
        }
    }
    out
}

/// Executes one scheduling action's worth of machine steps.
///
/// In full-interleaving mode this performs **partial-order reduction**: after
/// the first step, subsequent steps that touch only the acting process's
/// private cells are folded into the same action (they commute with every
/// other process's actions, so exploring their interleavings separately adds
/// nothing). The speculative extra step is rolled back if it turns out to
/// touch shared memory. Scripted explorations do not merge, keeping crash
/// granularity at single primitives.
fn step_merged(ctx: &Ctx<'_>, m: &mut Box<dyn Machine>, merge: bool) -> Poll {
    ctx.mem.reset_shared_touch();
    let mut r = m.step(ctx.mem);
    if merge {
        while matches!(r, Poll::Pending) {
            let snap = ctx.mem.snapshot();
            let saved = m.clone_box();
            ctx.mem.reset_shared_touch();
            let speculative = m.step(ctx.mem);
            if ctx.mem.shared_touched() {
                ctx.mem.restore(&snap);
                *m = saved;
                break;
            }
            r = speculative;
        }
    }
    r
}

fn apply(ctx: &mut Ctx<'_>, node: &mut Node, action: Action) {
    let merge = matches!(ctx.source, Workload::PerProcess(_));
    match action {
        Action::Crash => {
            node.crashes_used += 1;
            ctx.mem.crash(ctx.cfg.crash_policy);
            node.history.push(Event::Crash);
            for st in node.procs.iter_mut() {
                let cur = std::mem::replace(st, PState::Idle);
                *st = match cur {
                    PState::Running { op, .. } | PState::Recovering { op, .. } => {
                        PState::NeedRecovery { op }
                    }
                    other => other,
                };
            }
        }
        Action::Proc(i) => {
            let pid = Pid::new(i as u32);
            let cur = std::mem::replace(&mut node.procs[i], PState::Idle);
            node.procs[i] = match cur {
                PState::Idle => {
                    let op = match ctx.source {
                        Workload::PerProcess(w) => {
                            let op = w[i][node.next_op[i]];
                            node.next_op[i] += 1;
                            op
                        }
                        Workload::Script(script) => {
                            let (_, op) = script[node.script_pos];
                            node.script_pos += 1;
                            op
                        }
                    };
                    ctx.obj.prepare(ctx.mem, pid, &op);
                    node.history.push(Event::Invoke { pid, op });
                    PState::Running { m: ctx.obj.invoke(pid, &op), op }
                }
                PState::Running { op, mut m } => match step_merged(ctx, &mut m, merge) {
                    Poll::Ready(resp) => {
                        node.history.push(Event::Return { pid, resp });
                        PState::Idle
                    }
                    Poll::Pending => PState::Running { op, m },
                },
                PState::NeedRecovery { op } => {
                    PState::Recovering { m: ctx.obj.recover(pid, &op), op }
                }
                PState::Recovering { op, mut m } => match step_merged(ctx, &mut m, merge) {
                    Poll::Ready(verdict) => {
                        node.history.push(Event::RecoveryReturn { pid, verdict });
                        if verdict == RESP_FAIL
                            && ctx.cfg.retry_on_fail
                            && node.retries[i] < ctx.cfg.max_retries
                        {
                            node.retries[i] += 1;
                            ctx.obj.prepare(ctx.mem, pid, &op);
                            node.history.push(Event::Invoke { pid, op });
                            PState::Running { m: ctx.obj.invoke(pid, &op), op }
                        } else {
                            PState::Idle
                        }
                    }
                    Poll::Pending => PState::Recovering { op, m },
                },
            };
        }
    }
}

fn dfs(ctx: &mut Ctx<'_>, node: &Node) {
    if ctx.violation.is_some() || ctx.truncated {
        return;
    }
    let acts = actions(ctx, node);
    if acts.is_empty() {
        ctx.leaves += 1;
        if ctx.leaves >= ctx.cfg.max_leaves {
            ctx.truncated = true;
        }
        if ctx.obj.detectable() {
            if let Err(v) = check_history(ctx.obj.kind(), &node.history) {
                ctx.violation = Some(v);
            }
        } else {
            // Non-detectable objects: verdict words carry no linearization
            // claim; recovered operations become Unresolved (effect unknown,
            // interval preserved) and only durable linearizability remains.
            let records = node.history.to_records_relaxed();
            if let Err(mut v) = crate::linearize::check_records(ctx.obj.kind(), &records) {
                v.rendered = node.history.to_string();
                ctx.violation = Some(v);
            }
        }
        return;
    }
    for a in acts {
        let snap = ctx.mem.snapshot();
        let mut child = node.clone();
        apply(ctx, &mut child, a);
        dfs(ctx, &child);
        ctx.mem.restore(&snap);
        if ctx.violation.is_some() || ctx.truncated {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::build_world;
    use detectable::{DetectableCas, DetectableRegister, MaxRegister};

    #[test]
    fn script_register_with_one_crash_is_clean() {
        let (reg, mem) = build_world(|b| DetectableRegister::new(b, 2, 0));
        let p = Pid::new(0);
        let q = Pid::new(1);
        let script = [
            (p, OpSpec::Write(1)),
            (q, OpSpec::Read),
            (q, OpSpec::Write(2)),
            (p, OpSpec::Write(1)),
            (q, OpSpec::Read),
        ];
        let out = explore(&reg, &mem, Workload::Script(&script), &ExploreConfig::default());
        out.assert_clean();
        assert!(out.leaves > 10, "expected many crash positions, got {}", out.leaves);
    }

    #[test]
    fn script_cas_with_one_crash_is_clean() {
        let (cas, mem) = build_world(|b| DetectableCas::new(b, 2, 0));
        let p = Pid::new(0);
        let q = Pid::new(1);
        let script = [
            (p, OpSpec::Cas { old: 0, new: 1 }),
            (q, OpSpec::Cas { old: 1, new: 0 }),
            (p, OpSpec::Cas { old: 0, new: 1 }),
            (q, OpSpec::Read),
        ];
        let out = explore(&cas, &mem, Workload::Script(&script), &ExploreConfig::default());
        out.assert_clean();
    }

    #[test]
    fn concurrent_writes_all_interleavings_crash_free() {
        let (reg, mem) = build_world(|b| DetectableRegister::new(b, 2, 0));
        let w = vec![
            vec![OpSpec::Write(1), OpSpec::Read],
            vec![OpSpec::Write(2)],
        ];
        let cfg = ExploreConfig { max_crashes: 0, ..Default::default() };
        let out = explore(&reg, &mem, Workload::PerProcess(&w), &cfg);
        out.assert_clean();
        assert!(out.leaves > 100);
    }

    #[test]
    fn concurrent_cas_all_interleavings_one_crash() {
        let (cas, mem) = build_world(|b| DetectableCas::new(b, 2, 0));
        let w = vec![
            vec![OpSpec::Cas { old: 0, new: 1 }],
            vec![OpSpec::Cas { old: 0, new: 2 }],
        ];
        let out = explore(&cas, &mem, Workload::PerProcess(&w), &ExploreConfig::default());
        out.assert_clean();
    }

    #[test]
    fn max_register_explorations_are_clean() {
        let (mr, mem) = build_world(|b| MaxRegister::new(b, 2));
        let w = vec![
            vec![OpSpec::WriteMax(2), OpSpec::Read],
            vec![OpSpec::WriteMax(1)],
        ];
        let out = explore(&mr, &mem, Workload::PerProcess(&w), &ExploreConfig::default());
        out.assert_clean();
    }

    #[test]
    fn leaf_budget_truncates() {
        let (reg, mem) = build_world(|b| DetectableRegister::new(b, 2, 0));
        let w = vec![vec![OpSpec::Write(1)], vec![OpSpec::Write(2)]];
        let cfg = ExploreConfig { max_leaves: 5, max_crashes: 0, ..Default::default() };
        let out = explore(&reg, &mem, Workload::PerProcess(&w), &cfg);
        assert!(out.truncated);
        assert_eq!(out.leaves, 5);
    }

    #[test]
    fn memory_is_restored_after_exploration() {
        let (reg, mem) = build_world(|b| DetectableRegister::new(b, 2, 0));
        let before = mem.shared_key();
        let w = vec![vec![OpSpec::Write(9)], vec![]];
        let cfg = ExploreConfig { max_crashes: 0, ..Default::default() };
        let _ = explore(&reg, &mem, Workload::PerProcess(&w), &cfg);
        assert_eq!(mem.shared_key(), before);
    }
}
