//! Machine-checking the *doubly-perturbing* classification (paper
//! Definition 3, Lemmas 3–8).
//!
//! An operation `Opp` witnesses that an object is doubly-perturbing if
//!
//! 1. `Opp` is perturbing w.r.t. some `Op′` after some sequential history
//!    `H1`: `Op′` returns different responses in `H1 ∘ Opp ∘ Op′` and
//!    `H1 ∘ Op′`; and
//! 2. `H1 ∘ Opp ∘ Op′` has a (p-free) extension to `H2` after which (a
//!    second instance of) `Opp` is again perturbing w.r.t. some `Opq`.
//!
//! This module searches bounded sequential histories over a per-kind
//! operation alphabet for such witnesses, confirming Lemmas 3 and 5–8
//! (register, counter, CAS, fetch-and-add, FIFO queue are doubly-perturbing)
//! and Lemma 4 (the max register is **not** — the exhaustive search over the
//! bounded space finds no witness). The specs are process-oblivious, so
//! "a different process" and "p-free" reduce to op-sequence conditions.

use detectable::{ObjectKind, OpSpec, RecoverableObject};
use nvm::SimMemory;

use crate::driver::Driver;
use crate::spec::{spec_apply, spec_run};

/// A found witness (the paper's Definition 3 instantiated).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PerturbWitness {
    /// The doubly-perturbing operation `Opp`.
    pub opp: OpSpec,
    /// The history `H1` after which condition 1 holds.
    pub h1: Vec<OpSpec>,
    /// The operation `Op′` perturbed after `H1`.
    pub op_prime: OpSpec,
    /// The p-free extension turning `H1 ∘ Opp ∘ Op′` into `H2`.
    pub extension: Vec<OpSpec>,
    /// The operation `Opq` perturbed after `H2`.
    pub opq: OpSpec,
}

/// Renders a witness compactly (`Opp | H1 | Op' | ext | Opq`) for table
/// cells and JSON output.
pub fn render_witness(w: &PerturbWitness) -> String {
    let ops = |seq: &[OpSpec]| -> String {
        if seq.is_empty() {
            "ε".into()
        } else {
            seq.iter()
                .map(|o| o.to_string())
                .collect::<Vec<_>>()
                .join(" ∘ ")
        }
    };
    format!(
        "Opp = {}; H1 = {}; Op' = {}; ext = {}; Opq = {}",
        w.opp,
        ops(&w.h1),
        w.op_prime,
        ops(&w.extension),
        w.opq
    )
}

/// Is `opp` perturbing w.r.t. `observer` after the (valid) history `prefix`?
fn perturbs_after(kind: ObjectKind, prefix: &[OpSpec], opp: &OpSpec, observer: &OpSpec) -> bool {
    let Some((state, _)) = spec_run(kind, prefix) else {
        return false;
    };
    let Some((with_opp, _)) = spec_apply(kind, &state, opp) else {
        return false;
    };
    let (Some((_, resp_with)), Some((_, resp_without))) = (
        spec_apply(kind, &with_opp, observer),
        spec_apply(kind, &state, observer),
    ) else {
        return false;
    };
    resp_with != resp_without
}

/// Enumerates op sequences of length `0..=max_len` over `alphabet`.
fn sequences(alphabet: &[OpSpec], max_len: usize) -> Vec<Vec<OpSpec>> {
    let mut out: Vec<Vec<OpSpec>> = vec![vec![]];
    let mut frontier: Vec<Vec<OpSpec>> = vec![vec![]];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for seq in &frontier {
            for op in alphabet {
                let mut s = seq.clone();
                s.push(*op);
                next.push(s.clone());
                out.push(s);
            }
        }
        frontier = next;
    }
    out
}

/// Searches bounded sequential histories for a doubly-perturbing witness:
/// returns the first witness found, or `None` if no witness exists within
/// the bounds (for max registers this is the Lemma 4 claim, verified
/// exhaustively over the bounded space). The engine beneath
/// [`Scenario::perturb`](crate::Scenario::perturb); public for
/// engine-level equivalence tests.
pub fn witness_search(
    kind: ObjectKind,
    alphabet: &[OpSpec],
    max_h1: usize,
    max_ext: usize,
) -> Option<PerturbWitness> {
    let h1s = sequences(alphabet, max_h1);
    let exts = sequences(alphabet, max_ext);
    for opp in alphabet {
        for h1 in &h1s {
            for op_prime in alphabet {
                // Condition 1: Opp perturbs Op′ after H1.
                if !perturbs_after(kind, h1, opp, op_prime) {
                    continue;
                }
                // Condition 2: some extension of H1 ∘ Opp ∘ Op′ makes a
                // second Opp perturbing again.
                let mut base = h1.clone();
                base.push(*opp);
                base.push(*op_prime);
                for ext in &exts {
                    let mut h2 = base.clone();
                    h2.extend(ext.iter().copied());
                    if spec_run(kind, &h2).is_none() {
                        continue;
                    }
                    for opq in alphabet {
                        if perturbs_after(kind, &h2, opp, opq) {
                            return Some(PerturbWitness {
                                opp: *opp,
                                h1: h1.clone(),
                                op_prime: *op_prime,
                                extension: ext.clone(),
                                opq: *opq,
                            });
                        }
                    }
                }
            }
        }
    }
    None
}

/// Confirms a spec-level [`PerturbWitness`] against a real implementation:
/// replays the witness's histories on `obj` through the shared
/// [`Driver`] (solo, crash-free) and checks that both perturbation
/// conditions hold for the *implementation's* responses, not just the
/// specification's.
///
/// Branching between "with `Opp`" and "without `Opp`" runs uses the
/// memory's undo-log [`checkpoint`](SimMemory::checkpoint) /
/// [`rollback`](SimMemory::rollback), so the whole validation runs on one
/// world. The memory is left exactly as it was on entry.
///
/// Process roles: process 0 plays the perturber `p` (it alone executes
/// `Opp`), process 1 plays the observer (`H1`, `Op′`, the p-free
/// extension, and `Opq`) — so `obj` needs at least two processes.
///
/// # Panics
///
/// Panics if `obj` has fewer than two processes, or if any solo operation
/// fails to terminate (the paper's algorithms are wait-free).
pub fn validate_witness_on_impl(
    w: &PerturbWitness,
    obj: &dyn RecoverableObject,
    mem: &SimMemory,
) -> bool {
    assert!(
        obj.processes() >= 2,
        "perturbation needs a perturber and an observer"
    );
    const LIMIT: usize = 1_000_000;
    let outer = mem.checkpoint();
    let mut d = Driver::for_object(obj);
    // Replay H1 (observer process).
    for op in &w.h1 {
        d.run_solo(obj, mem, 1, *op, LIMIT);
    }
    // Condition 1: Opp changes Op′'s response after H1.
    let cp = mem.checkpoint();
    d.run_solo(obj, mem, 0, w.opp, LIMIT);
    let with_opp = d.run_solo(obj, mem, 1, w.op_prime, LIMIT);
    mem.rollback(cp);
    let cp = mem.checkpoint();
    let without_opp = d.run_solo(obj, mem, 1, w.op_prime, LIMIT);
    mem.rollback(cp);
    let condition1 = with_opp != without_opp;
    let condition2 = condition1 && {
        // Rebuild H2 = H1 ∘ Opp ∘ Op′ ∘ extension…
        d.run_solo(obj, mem, 0, w.opp, LIMIT);
        d.run_solo(obj, mem, 1, w.op_prime, LIMIT);
        for op in &w.extension {
            d.run_solo(obj, mem, 1, *op, LIMIT);
        }
        // …after which a second Opp must change Opq's response.
        let cp = mem.checkpoint();
        d.run_solo(obj, mem, 0, w.opp, LIMIT);
        let with_opp = d.run_solo(obj, mem, 1, w.opq, LIMIT);
        mem.rollback(cp);
        let cp = mem.checkpoint();
        let without_opp = d.run_solo(obj, mem, 1, w.opq, LIMIT);
        mem.rollback(cp);
        with_opp != without_opp
    };
    mem.rollback(outer);
    condition1 && condition2
}

/// The standard search alphabet for each object kind (small argument
/// domains, as in the paper's lemma proofs).
pub fn default_alphabet(kind: ObjectKind) -> Vec<OpSpec> {
    match kind {
        ObjectKind::Register => vec![OpSpec::Read, OpSpec::Write(0), OpSpec::Write(1)],
        ObjectKind::Cas => vec![
            OpSpec::Read,
            OpSpec::Cas { old: 0, new: 1 },
            OpSpec::Cas { old: 1, new: 0 },
        ],
        ObjectKind::MaxRegister => vec![
            OpSpec::Read,
            OpSpec::WriteMax(0),
            OpSpec::WriteMax(1),
            OpSpec::WriteMax(2),
        ],
        ObjectKind::Counter => vec![OpSpec::Read, OpSpec::Inc],
        ObjectKind::Faa => vec![OpSpec::Read, OpSpec::Faa(1)],
        ObjectKind::Swap => vec![OpSpec::Read, OpSpec::Swap(0), OpSpec::Swap(1)],
        ObjectKind::Tas => vec![OpSpec::Read, OpSpec::TestAndSet, OpSpec::Reset],
        ObjectKind::Queue => vec![OpSpec::Enq(0), OpSpec::Enq(1), OpSpec::Deq],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn witness(kind: ObjectKind) -> Option<PerturbWitness> {
        witness_search(kind, &default_alphabet(kind), 3, 3)
    }

    #[test]
    fn register_is_doubly_perturbing_lemma_3() {
        let w = witness(ObjectKind::Register).expect("Lemma 3");
        // The paper's witness is a Write; reads cannot perturb anything.
        assert!(matches!(w.opp, OpSpec::Write(_)));
    }

    #[test]
    fn counter_is_doubly_perturbing_lemma_5() {
        let w = witness(ObjectKind::Counter).expect("Lemma 5");
        assert_eq!(w.opp, OpSpec::Inc);
    }

    #[test]
    fn cas_is_doubly_perturbing_lemma_6() {
        let w = witness(ObjectKind::Cas).expect("Lemma 6");
        assert!(matches!(w.opp, OpSpec::Cas { .. }));
    }

    #[test]
    fn faa_is_doubly_perturbing_lemma_7() {
        let w = witness(ObjectKind::Faa).expect("Lemma 7");
        assert_eq!(w.opp, OpSpec::Faa(1));
    }

    #[test]
    fn queue_is_doubly_perturbing_lemma_8() {
        let w = witness(ObjectKind::Queue).expect("Lemma 8");
        assert!(matches!(w.opp, OpSpec::Deq | OpSpec::Enq(_)));
    }

    #[test]
    fn swap_is_doubly_perturbing() {
        // Swap is in the paper's §5 list of common objects in the class.
        let w = witness(ObjectKind::Swap).expect("swap");
        assert!(matches!(w.opp, OpSpec::Swap(_)));
    }

    #[test]
    fn tas_is_doubly_perturbing() {
        // Resettable test-and-set is in the paper's "large class" (§5).
        let w = witness(ObjectKind::Tas).expect("resettable TAS");
        assert!(matches!(w.opp, OpSpec::TestAndSet | OpSpec::Reset));
    }

    #[test]
    fn max_register_is_not_doubly_perturbing_lemma_4() {
        assert_eq!(witness(ObjectKind::MaxRegister), None, "Lemma 4");
    }

    #[test]
    fn paper_witness_for_register_validates() {
        // Lemma 3's explicit witness: writep(v1) with H1 = ε, Op′ = readq,
        // extension writeq(v0).
        assert!(perturbs_after(
            ObjectKind::Register,
            &[],
            &OpSpec::Write(1),
            &OpSpec::Read
        ));
        let h2 = [OpSpec::Write(1), OpSpec::Read, OpSpec::Write(0)];
        assert!(perturbs_after(
            ObjectKind::Register,
            &h2,
            &OpSpec::Write(1),
            &OpSpec::Read
        ));
    }

    #[test]
    fn max_register_second_write_never_perturbs() {
        // The Lemma 4 argument, checked directly: after WriteMax(v) is
        // applied, a second WriteMax(v) cannot change any response.
        let h = [OpSpec::WriteMax(2), OpSpec::Read];
        assert!(!perturbs_after(
            ObjectKind::MaxRegister,
            &h,
            &OpSpec::WriteMax(2),
            &OpSpec::Read
        ));
    }

    #[test]
    fn sequences_enumerate_expected_counts() {
        let a = [OpSpec::Read, OpSpec::Inc];
        // lengths 0,1,2: 1 + 2 + 4 = 7.
        assert_eq!(sequences(&a, 2).len(), 7);
    }

    #[test]
    fn spec_witnesses_validate_on_the_real_algorithms() {
        use crate::sim::build_world;

        let w = witness(ObjectKind::Register).expect("Lemma 3");
        let (reg, mem) = build_world(|b| detectable::DetectableRegister::new(b, 2, 0));
        assert!(validate_witness_on_impl(&w, &reg, &mem));

        let w = witness(ObjectKind::Cas).expect("Lemma 6");
        let (cas, mem) = build_world(|b| detectable::DetectableCas::new(b, 2, 0));
        assert!(validate_witness_on_impl(&w, &cas, &mem));

        let w = witness(ObjectKind::Counter).expect("Lemma 5");
        let (ctr, mem) = build_world(|b| detectable::DetectableCounter::new(b, 2));
        assert!(validate_witness_on_impl(&w, &ctr, &mem));
    }

    #[test]
    fn fabricated_witness_fails_on_the_max_register() {
        // Lemma 4 in executable form: no WriteMax can be doubly-perturbing
        // on the real Algorithm 3 either.
        use crate::sim::build_world;
        let fake = PerturbWitness {
            opp: OpSpec::WriteMax(2),
            h1: vec![OpSpec::WriteMax(2), OpSpec::Read],
            op_prime: OpSpec::Read,
            extension: vec![],
            opq: OpSpec::Read,
        };
        let (mr, mem) = build_world(|b| detectable::MaxRegister::new(b, 2));
        assert!(!validate_witness_on_impl(&fake, &mr, &mem));
    }

    #[test]
    fn validation_leaves_the_memory_untouched() {
        use crate::sim::build_world;
        let w = witness(ObjectKind::Register).expect("Lemma 3");
        let (reg, mem) = build_world(|b| detectable::DetectableRegister::new(b, 2, 0));
        let before = mem.snapshot();
        let _ = validate_witness_on_impl(&w, &reg, &mem);
        assert_eq!(mem.snapshot(), before);
    }
}
