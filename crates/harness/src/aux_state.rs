//! The auxiliary-state experiment — Theorem 2 as an executable search.
//!
//! Theorem 2: every (weakly obstruction-free, durably linearizable,
//! detectable) implementation of a doubly-perturbing object must receive
//! auxiliary state, via NVM writes between invocations or via operation
//! arguments. The proof (Figure 2) builds an execution where a deprived
//! implementation must confuse "my operation was linearized long ago" with
//! "my re-invoked operation was linearized", and thereby violate durable
//! linearizability.
//!
//! This module makes that executable. [`theorem2_script`] emits the
//! Figure 2-shaped operation sequence for each doubly-perturbing kind
//! (derived from the Lemma 3/5–8 witnesses); [`probe_aux_state`] explores
//! that script with one crash allowed at *every* position. Run against:
//!
//! * the paper's algorithms (which receive auxiliary state through
//!   `prepare`) — the exploration is clean;
//! * the same algorithms wrapped in `baselines::WithoutPrepare` (auxiliary
//!   state withheld: nothing is written between invocations) — the
//!   exploration finds a durable-linearizability/detectability violation,
//!   exactly as the theorem predicts;
//! * the max register (not doubly-perturbing; `prepare` is already a no-op)
//!   — clean, separating the class boundary.

use detectable::{ObjectKind, OpSpec, RecoverableObject};
use nvm::{Pid, SimMemory};

use crate::explore::{explore_engine, ExploreConfig, ExploreOutcome, OpSource};

/// The Figure 2-shaped script for a doubly-perturbing object kind:
/// `H1 ∘ Opp ∘ Op′ ∘ extension ∘ Opp(again) ∘ Opq`, with process `p0`
/// playing the theorem's `p` and `p1` playing `r`/`q`.
///
/// Crashing right after the second `Opp` invocation (one of the positions
/// the explorer enumerates) reproduces the theorem's adversarial execution:
/// an implementation without auxiliary state cannot distinguish the crashed
/// re-invocation from the completed first instance.
///
/// # Panics
///
/// Panics for [`ObjectKind::MaxRegister`] — it is not doubly-perturbing
/// (Lemma 4), which is exactly why no such script exists for it; use any
/// workload to confirm its crash-safety instead.
pub fn theorem2_script(kind: ObjectKind) -> Vec<(Pid, OpSpec)> {
    let p = Pid::new(0);
    let q = Pid::new(1);
    match kind {
        ObjectKind::Register => vec![
            (p, OpSpec::Write(1)), // Opp: perturbing w.r.t. readq after ε
            (q, OpSpec::Read),     // Op′
            (q, OpSpec::Write(0)), // extension: restores perturbability
            (p, OpSpec::Write(1)), // Opp again — crash lands here
            (q, OpSpec::Read),     // Opq: observes the contradiction
        ],
        ObjectKind::Cas => vec![
            (p, OpSpec::Cas { old: 0, new: 1 }), // Opp
            (q, OpSpec::Cas { old: 0, new: 1 }), // Op′ (perturbed: loses)
            (q, OpSpec::Cas { old: 1, new: 0 }), // extension
            (p, OpSpec::Cas { old: 0, new: 1 }), // Opp again
            (q, OpSpec::Cas { old: 0, new: 1 }), // Opq
        ],
        ObjectKind::Counter => vec![
            (p, OpSpec::Inc),
            (q, OpSpec::Read),
            (p, OpSpec::Inc),
            (q, OpSpec::Read),
        ],
        ObjectKind::Faa => vec![
            (p, OpSpec::Faa(1)),
            (q, OpSpec::Read),
            (p, OpSpec::Faa(1)),
            (q, OpSpec::Read),
        ],
        ObjectKind::Swap => vec![
            (p, OpSpec::Swap(1)),
            (q, OpSpec::Read),
            (q, OpSpec::Swap(0)),
            (p, OpSpec::Swap(1)),
            (q, OpSpec::Read),
        ],
        ObjectKind::Tas => vec![
            (p, OpSpec::TestAndSet),
            (q, OpSpec::TestAndSet),
            (q, OpSpec::Reset),
            (p, OpSpec::TestAndSet),
            (q, OpSpec::TestAndSet),
        ],
        ObjectKind::Queue => vec![
            (p, OpSpec::Enq(1)),
            (p, OpSpec::Enq(2)),
            (p, OpSpec::Deq),
            (q, OpSpec::Deq),
            (q, OpSpec::Enq(1)),
            (q, OpSpec::Enq(2)),
            (p, OpSpec::Deq),
            (q, OpSpec::Deq),
        ],
        ObjectKind::MaxRegister => {
            panic!("max register is not doubly-perturbing (Lemma 4); no Figure 2 script exists")
        }
    }
}

/// Explores the Theorem 2 script against `obj` with a one-crash budget at
/// every position, checking durable linearizability + detectability of each
/// complete execution.
///
/// A `Some(violation)` in the outcome is the Figure 2 contradiction
/// materialized; `None` means the object survived every adversarial crash
/// placement.
pub fn probe_aux_state(obj: &dyn RecoverableObject, mem: &SimMemory) -> ExploreOutcome {
    let script = theorem2_script(obj.kind());
    let cfg = ExploreConfig {
        max_crashes: 1,
        retry_on_fail: true,
        max_retries: 2,
        ..Default::default()
    };
    explore_engine(obj, mem, OpSource::Script(&script), &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::build_world;
    use detectable::{
        DetectableCas, DetectableCounter, DetectableQueue, DetectableRegister, DetectableTas,
    };

    #[test]
    fn paper_algorithms_survive_the_theorem2_probe() {
        let (reg, mem) = build_world(|b| DetectableRegister::new(b, 2, 0));
        probe_aux_state(&reg, &mem).assert_clean();

        let (cas, mem) = build_world(|b| DetectableCas::new(b, 2, 0));
        probe_aux_state(&cas, &mem).assert_clean();
    }

    #[test]
    fn composed_objects_survive_the_theorem2_probe() {
        let (ctr, mem) = build_world(|b| DetectableCounter::new(b, 2));
        probe_aux_state(&ctr, &mem).assert_clean();

        let (tas, mem) = build_world(|b| DetectableTas::new(b, 2));
        probe_aux_state(&tas, &mem).assert_clean();

        let (sw, mem) = build_world(|b| detectable::DetectableSwap::new(b, 2));
        probe_aux_state(&sw, &mem).assert_clean();
    }

    #[test]
    fn deprived_swap_violates_theorem2() {
        let (sw, mem) =
            build_world(|b| baselines::WithoutPrepare::new(detectable::DetectableSwap::new(b, 2)));
        let out = probe_aux_state(&sw, &mem);
        assert!(
            out.violation.is_some(),
            "no violation in {} executions",
            out.leaves
        );
    }

    #[test]
    fn queue_survives_the_theorem2_probe() {
        let (q, mem) = build_world(|b| DetectableQueue::new(b, 2, 64));
        probe_aux_state(&q, &mem).assert_clean();
    }

    #[test]
    #[should_panic(expected = "not doubly-perturbing")]
    fn no_script_for_max_register() {
        let _ = theorem2_script(ObjectKind::MaxRegister);
    }

    #[test]
    fn deprived_register_violates_theorem2() {
        // Withhold the auxiliary state from Algorithm 1: the Figure 2 probe
        // must find a durable-linearizability/detectability violation.
        let (reg, mem) =
            build_world(|b| baselines::WithoutPrepare::new(DetectableRegister::new(b, 2, 0)));
        let out = probe_aux_state(&reg, &mem);
        assert!(
            out.violation.is_some(),
            "Theorem 2 predicts a violation, none found in {} executions",
            out.leaves
        );
    }

    #[test]
    fn deprived_cas_violates_theorem2() {
        let (cas, mem) =
            build_world(|b| baselines::WithoutPrepare::new(DetectableCas::new(b, 2, 0)));
        let out = probe_aux_state(&cas, &mem);
        assert!(
            out.violation.is_some(),
            "Theorem 2 predicts a violation, none found in {} executions",
            out.leaves
        );
    }

    #[test]
    fn deprived_counter_violates_theorem2() {
        let (ctr, mem) =
            build_world(|b| baselines::WithoutPrepare::new(DetectableCounter::new(b, 2)));
        let out = probe_aux_state(&ctr, &mem);
        assert!(
            out.violation.is_some(),
            "no violation in {} executions",
            out.leaves
        );
    }

    #[test]
    fn deprived_tagged_baselines_also_violate_theorem2() {
        // Theorem 2 applies to *any* detectable implementation, including
        // the unbounded-tag baselines: deprived of their per-op tags and
        // announcement resets, they too must fail.
        let (reg, mem) =
            build_world(|b| baselines::WithoutPrepare::new(baselines::TaggedRegister::new(b, 2)));
        let out = probe_aux_state(&reg, &mem);
        assert!(
            out.violation.is_some(),
            "no violation in {} executions",
            out.leaves
        );

        let (cas, mem) =
            build_world(|b| baselines::WithoutPrepare::new(baselines::TaggedCas::new(b, 2)));
        let out = probe_aux_state(&cas, &mem);
        assert!(
            out.violation.is_some(),
            "no violation in {} executions",
            out.leaves
        );
    }

    #[test]
    fn max_register_needs_no_auxiliary_state() {
        // The positive side of the boundary: Algorithm 3 has no prepare at
        // all (wrapping it changes nothing), and survives crash exploration
        // over a WriteMax/Read workload.
        use crate::explore::{explore_engine, ExploreConfig, OpSource};
        use detectable::MaxRegister;
        let (mr, mem) = build_world(|b| baselines::WithoutPrepare::new(MaxRegister::new(b, 2)));
        let script = [
            (Pid::new(0), OpSpec::WriteMax(1)),
            (Pid::new(1), OpSpec::Read),
            (Pid::new(1), OpSpec::WriteMax(2)),
            (Pid::new(0), OpSpec::WriteMax(1)),
            (Pid::new(1), OpSpec::Read),
        ];
        let out = explore_engine(
            &mr,
            &mem,
            OpSource::Script(&script),
            &ExploreConfig::default(),
        );
        out.assert_clean();
    }
}
