//! Declarative workload descriptions for the [`Scenario`](crate::Scenario)
//! API.
//!
//! Every execution strategy in this crate ultimately needs to know *which
//! operations each process performs*. Before the `Scenario` redesign each
//! entry point invented its own answer — `run_sim` took an ad-hoc
//! `FnMut(Pid, usize) -> OpSpec` closure, the explorer took borrowed
//! per-process slices or a global script, the census took an operation
//! alphabet. [`Workload`] unifies them: one owned, cloneable, thread-safe
//! description that each terminal runner lowers to the representation its
//! engine wants via [`Workload::resolve`].

use detectable::{ObjectKind, OpSpec};
use nvm::Pid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What operations the processes of a [`Scenario`](crate::Scenario) perform.
///
/// Construct with the associated functions ([`Workload::per_process`],
/// [`Workload::script`], [`Workload::round_robin`], [`Workload::random`],
/// [`Workload::from_fn`], [`Workload::mixed`]); the variants are public so
/// runners and tests can match on them.
#[derive(Clone, Debug)]
pub enum Workload {
    /// `ops[p]` is the exact operation list of process `p`. Execution
    /// strategies that branch (the explorer) consider all interleavings;
    /// randomized ones schedule the lists concurrently.
    PerProcess(Vec<Vec<OpSpec>>),
    /// One global sequence executed one operation at a time (no concurrency
    /// between operations). The Theorem 2 / Figure 2 constructions and the
    /// Gray-code census walk are scripts.
    Script(Vec<(Pid, OpSpec)>),
    /// Each process performs `ops_per_process` operations drawn round-robin
    /// from `alphabet`, staggered by process index so concurrent processes
    /// start on different operations.
    RoundRobin {
        /// The operations cycled through.
        alphabet: Vec<OpSpec>,
        /// Operations per process.
        ops_per_process: usize,
    },
    /// Each process performs `ops_per_process` operations drawn uniformly at
    /// random from `alphabet`. Draws are seeded: the simulation runner
    /// seeds them from its run seed, the exploration/census runners from
    /// [`Scenario::workload_seed`](crate::Scenario::workload_seed) — equal
    /// seeds give equal draws.
    Random {
        /// The operations drawn from.
        alphabet: Vec<OpSpec>,
        /// Operations per process.
        ops_per_process: usize,
    },
    /// `f(pid, i)` supplies the `i`-th operation of process `pid` — the
    /// migration path for the closure-based workloads of the old free
    /// functions. Restricted to `fn` pointers so workloads stay `Clone +
    /// Send + Sync` for sweeps.
    FromFn {
        /// The generator function.
        f: fn(Pid, usize) -> OpSpec,
        /// Operations per process.
        ops_per_process: usize,
    },
    /// The canonical mixed read/update workload for the scenario's object
    /// kind (the mix the crash-storm soaks have always used), resolved via
    /// [`mixed_op`].
    Mixed {
        /// Operations per process.
        ops_per_process: usize,
    },
}

/// A [`Workload`] lowered to the concrete representation the engines run:
/// either per-process operation lists or a global script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResolvedWorkload {
    /// Per-process operation lists.
    PerProcess(Vec<Vec<OpSpec>>),
    /// A global one-operation-at-a-time script.
    Script(Vec<(Pid, OpSpec)>),
}

impl Workload {
    /// Explicit per-process operation lists.
    pub fn per_process(ops: Vec<Vec<OpSpec>>) -> Workload {
        Workload::PerProcess(ops)
    }

    /// A global one-operation-at-a-time script.
    pub fn script(ops: Vec<(Pid, OpSpec)>) -> Workload {
        Workload::Script(ops)
    }

    /// Round-robin draws from an operation alphabet.
    pub fn round_robin(alphabet: Vec<OpSpec>, ops_per_process: usize) -> Workload {
        Workload::RoundRobin {
            alphabet,
            ops_per_process,
        }
    }

    /// Seeded uniform draws from an operation alphabet.
    pub fn random(alphabet: Vec<OpSpec>, ops_per_process: usize) -> Workload {
        Workload::Random {
            alphabet,
            ops_per_process,
        }
    }

    /// Function-generated operations (the closure-workload migration path).
    pub fn from_fn(f: fn(Pid, usize) -> OpSpec, ops_per_process: usize) -> Workload {
        Workload::FromFn { f, ops_per_process }
    }

    /// The canonical mixed workload for the scenario's object kind.
    pub fn mixed(ops_per_process: usize) -> Workload {
        Workload::Mixed { ops_per_process }
    }

    /// Lowers the workload for a world of `processes` processes implementing
    /// `kind`. `seed` feeds [`Workload::Random`] draws only; every other
    /// variant resolves identically for all seeds.
    pub fn resolve(&self, kind: ObjectKind, processes: u32, seed: u64) -> ResolvedWorkload {
        let n = processes as usize;
        match self {
            Workload::PerProcess(ops) => {
                assert!(
                    ops.len() <= n,
                    "workload lists {} processes but the world has {n}",
                    ops.len()
                );
                let mut lists = ops.clone();
                lists.resize(n, Vec::new());
                ResolvedWorkload::PerProcess(lists)
            }
            Workload::Script(ops) => {
                for (pid, op) in ops {
                    assert!(
                        pid.idx() < n,
                        "script workload references {pid} (op {op}) but the world has only \
                         {n} processes (pids are 0-based: valid pids are p0..p{})",
                        n.saturating_sub(1)
                    );
                }
                ResolvedWorkload::Script(ops.clone())
            }
            Workload::RoundRobin {
                alphabet,
                ops_per_process,
            } => {
                assert!(!alphabet.is_empty(), "round-robin alphabet is empty");
                ResolvedWorkload::PerProcess(
                    (0..n)
                        .map(|p| {
                            (0..*ops_per_process)
                                .map(|i| alphabet[(p + i) % alphabet.len()])
                                .collect()
                        })
                        .collect(),
                )
            }
            Workload::Random {
                alphabet,
                ops_per_process,
            } => {
                assert!(!alphabet.is_empty(), "random alphabet is empty");
                // One stream per process, derived from the run seed, so a
                // process's script is independent of the process count.
                ResolvedWorkload::PerProcess(
                    (0..n)
                        .map(|p| {
                            let mut rng = StdRng::seed_from_u64(
                                seed ^ (p as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                            );
                            (0..*ops_per_process)
                                .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
                                .collect()
                        })
                        .collect(),
                )
            }
            Workload::FromFn { f, ops_per_process } => ResolvedWorkload::PerProcess(
                (0..n)
                    .map(|p| {
                        (0..*ops_per_process)
                            .map(|i| f(Pid::new(p as u32), i))
                            .collect()
                    })
                    .collect(),
            ),
            Workload::Mixed { ops_per_process } => ResolvedWorkload::PerProcess(
                (0..n)
                    .map(|p| {
                        (0..*ops_per_process)
                            .map(|i| mixed_op(kind, Pid::new(p as u32), i))
                            .collect()
                    })
                    .collect(),
            ),
        }
    }

    /// Whether this workload *family* is process-symmetric by construction
    /// — generated from an operation alphabet the same way for every
    /// process ([`round_robin`](Workload::round_robin),
    /// [`random`](Workload::random), [`mixed`](Workload::mixed)) rather
    /// than hand-assigned per process or scripted. Used by
    /// [`Scenario::explore`](crate::Scenario::explore) to resolve
    /// [`SymmetryMode::Auto`](crate::explore::SymmetryMode): reduction is
    /// auto-enabled only for these families, and only when the *resolved*
    /// lists actually contain an orbit
    /// ([`ResolvedWorkload::symmetric`]).
    pub fn alphabet_generated(&self) -> bool {
        matches!(
            self,
            Workload::RoundRobin { .. } | Workload::Random { .. } | Workload::Mixed { .. }
        )
    }

    /// The operation alphabet this workload implies for alphabet-driven
    /// runners (the BFS census and the perturbation search): explicit for
    /// the alphabet variants, the distinct operations in appearance order
    /// for list variants, and the standard per-kind search alphabet
    /// otherwise. **May be empty** when a list variant contains no
    /// operations at all — alphabet-driven runners reject that as a
    /// configuration error rather than censusing a zero-op world.
    pub fn alphabet(&self, kind: ObjectKind) -> Vec<OpSpec> {
        match self {
            Workload::RoundRobin { alphabet, .. } | Workload::Random { alphabet, .. } => {
                alphabet.clone()
            }
            Workload::PerProcess(ops) => {
                let mut seen = Vec::new();
                for op in ops.iter().flatten() {
                    if !seen.contains(op) {
                        seen.push(*op);
                    }
                }
                seen
            }
            Workload::Script(ops) => {
                let mut seen = Vec::new();
                for (_, op) in ops {
                    if !seen.contains(op) {
                        seen.push(*op);
                    }
                }
                seen
            }
            Workload::FromFn { .. } | Workload::Mixed { .. } => {
                crate::perturb::default_alphabet(kind)
            }
        }
    }
}

impl ResolvedWorkload {
    /// The symmetry witness: whether some two processes run *identical*
    /// operation lists, i.e. the configuration has at least one nontrivial
    /// process-id orbit for the explorer's symmetry reduction to merge.
    /// Always `false` for scripts (a script pins the acting process of
    /// every step, so renaming changes the execution).
    pub fn symmetric(&self) -> bool {
        match self {
            ResolvedWorkload::Script(_) => false,
            ResolvedWorkload::PerProcess(lists) => lists
                .iter()
                .enumerate()
                .any(|(i, a)| lists[..i].iter().any(|b| a == b)),
        }
    }

    /// Per-process operation lists — projecting a script onto each process's
    /// subsequence (randomized schedulers preserve per-process order only).
    pub fn into_per_process(self, processes: u32) -> Vec<Vec<OpSpec>> {
        match self {
            ResolvedWorkload::PerProcess(lists) => lists,
            ResolvedWorkload::Script(ops) => {
                let mut lists = vec![Vec::new(); processes as usize];
                for (pid, op) in ops {
                    lists[pid.idx()].push(op);
                }
                lists
            }
        }
    }
}

/// The canonical mixed read/update operation mix per object kind — the mix
/// the crash-storm soak has always used (reads interleaved with updates
/// whose arguments vary by process and position).
pub fn mixed_op(kind: ObjectKind, pid: Pid, i: usize) -> OpSpec {
    match kind {
        ObjectKind::Register => {
            if (pid.idx() + i).is_multiple_of(3) {
                OpSpec::Read
            } else {
                OpSpec::Write((pid.idx() * 10 + i) as u32 % 7)
            }
        }
        ObjectKind::Cas => OpSpec::Cas {
            old: (i as u32) % 4,
            new: (pid.get() + i as u32 + 1) % 4,
        },
        ObjectKind::MaxRegister => {
            if (pid.idx() + i).is_multiple_of(3) {
                OpSpec::Read
            } else {
                OpSpec::WriteMax((pid.idx() * 3 + i) as u32 % 9)
            }
        }
        ObjectKind::Counter => {
            if (pid.idx() + i).is_multiple_of(4) {
                OpSpec::Read
            } else {
                OpSpec::Inc
            }
        }
        ObjectKind::Faa => {
            if (pid.idx() + i).is_multiple_of(4) {
                OpSpec::Read
            } else {
                OpSpec::Faa(1 + (pid.get() % 3))
            }
        }
        ObjectKind::Swap => {
            if (pid.idx() + i).is_multiple_of(3) {
                OpSpec::Read
            } else {
                OpSpec::Swap((pid.idx() * 7 + i) as u32 % 5)
            }
        }
        ObjectKind::Tas => match (pid.idx() + i) % 3 {
            0 => OpSpec::TestAndSet,
            1 => OpSpec::Reset,
            _ => OpSpec::Read,
        },
        ObjectKind::Queue => {
            if (pid.idx() + i).is_multiple_of(2) {
                OpSpec::Enq((pid.idx() * 100 + i) as u32)
            } else {
                OpSpec::Deq
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_staggers_by_process() {
        let w = Workload::round_robin(vec![OpSpec::Read, OpSpec::Inc], 3);
        let ResolvedWorkload::PerProcess(lists) = w.resolve(ObjectKind::Counter, 2, 0) else {
            panic!("round robin resolves per process");
        };
        assert_eq!(lists[0], vec![OpSpec::Read, OpSpec::Inc, OpSpec::Read]);
        assert_eq!(lists[1], vec![OpSpec::Inc, OpSpec::Read, OpSpec::Inc]);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let w = Workload::random(vec![OpSpec::Read, OpSpec::Inc], 8);
        let a = w.resolve(ObjectKind::Counter, 3, 42);
        let b = w.resolve(ObjectKind::Counter, 3, 42);
        let c = w.resolve(ObjectKind::Counter, 3, 43);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should draw differently");
    }

    #[test]
    fn script_projects_per_process_subsequences() {
        let w = Workload::script(vec![
            (Pid::new(0), OpSpec::Write(1)),
            (Pid::new(1), OpSpec::Read),
            (Pid::new(0), OpSpec::Write(2)),
        ]);
        let lists = w.resolve(ObjectKind::Register, 2, 0).into_per_process(2);
        assert_eq!(lists[0], vec![OpSpec::Write(1), OpSpec::Write(2)]);
        assert_eq!(lists[1], vec![OpSpec::Read]);
    }

    #[test]
    fn alphabet_from_lists_dedups_in_order() {
        let w = Workload::per_process(vec![
            vec![OpSpec::Write(1), OpSpec::Read],
            vec![OpSpec::Write(1), OpSpec::Write(2)],
        ]);
        assert_eq!(
            w.alphabet(ObjectKind::Register),
            vec![OpSpec::Write(1), OpSpec::Read, OpSpec::Write(2)]
        );
    }

    #[test]
    fn mixed_covers_every_kind() {
        for kind in [
            ObjectKind::Register,
            ObjectKind::Cas,
            ObjectKind::MaxRegister,
            ObjectKind::Counter,
            ObjectKind::Faa,
            ObjectKind::Swap,
            ObjectKind::Tas,
            ObjectKind::Queue,
        ] {
            let w = Workload::mixed(4);
            let lists = w.resolve(kind, 3, 0).into_per_process(3);
            assert_eq!(lists.len(), 3);
            assert!(lists.iter().all(|l| l.len() == 4));
        }
    }

    #[test]
    fn per_process_pads_missing_processes() {
        let w = Workload::per_process(vec![vec![OpSpec::Inc]]);
        let lists = w.resolve(ObjectKind::Counter, 3, 0).into_per_process(3);
        assert_eq!(lists.len(), 3);
        assert!(lists[1].is_empty() && lists[2].is_empty());
    }

    #[test]
    #[should_panic(
        expected = "script workload references p2 (op Write(9)) but the world has only 2 processes"
    )]
    fn script_with_out_of_range_pid_is_rejected_at_resolve() {
        // Regression: this used to slip through resolve and blow up later
        // as a bare index-out-of-bounds in `into_per_process`.
        let w = Workload::script(vec![
            (Pid::new(0), OpSpec::Write(1)),
            (Pid::new(2), OpSpec::Write(9)),
        ]);
        let _ = w.resolve(ObjectKind::Register, 2, 0);
    }

    #[test]
    fn symmetry_witness_requires_two_equal_lists() {
        let kind = ObjectKind::Counter;
        // Alphabet of one op: every process gets the same list.
        let sym = Workload::round_robin(vec![OpSpec::Inc], 2).resolve(kind, 3, 0);
        assert!(sym.symmetric());
        // Two-op alphabet, 2 processes: the stagger makes all lists differ.
        let asym = Workload::round_robin(vec![OpSpec::Inc, OpSpec::Read], 2).resolve(kind, 2, 0);
        assert!(!asym.symmetric());
        // …but with 3 processes, p0 and p2 coincide.
        let wrap = Workload::round_robin(vec![OpSpec::Inc, OpSpec::Read], 2).resolve(kind, 3, 0);
        assert!(wrap.symmetric());
        // Scripts never witness symmetry.
        let script = Workload::script(vec![(Pid::new(0), OpSpec::Inc)]).resolve(kind, 2, 0);
        assert!(!script.symmetric());
        // Family gate: only alphabet-generated workloads auto-enable.
        assert!(Workload::mixed(2).alphabet_generated());
        assert!(Workload::random(vec![OpSpec::Inc], 2).alphabet_generated());
        assert!(
            !Workload::per_process(vec![vec![OpSpec::Inc], vec![OpSpec::Inc]]).alphabet_generated()
        );
        assert!(!Workload::script(Vec::new()).alphabet_generated());
    }
}
