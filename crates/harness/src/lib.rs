//! Correctness harness for the detectable-objects reproduction.
//!
//! This crate is the "evaluation testbed" of the reproduction: it drives the
//! objects of the [`detectable`] and [`baselines`] crates through crashes
//! and adversarial schedules, and checks the paper's claims:
//!
//! * [`spec`] — sequential specifications of every object kind;
//! * [`history`] — execution recording (invocations, responses, crashes,
//!   recovery verdicts);
//! * [`linearize`] — the durable-linearizability + detectability checker
//!   (Wing–Gong search adapted to the crash-recovery model);
//! * [`driver`] — the shared execution driver: announcement protocol,
//!   machine stepping, crash demotion, recovery re-entry and fail-retry
//!   budgeting, used by every component below;
//! * [`sim`] — seeded randomized simulator with crash injection at
//!   primitive-step granularity and asynchronous per-process recovery;
//! * [`explore`](mod@explore) — exhaustive interleaving + crash-point exploration for
//!   small configurations (machine-checks Lemmas 1 and 2 at small scale);
//! * [`census`] — the reachable-configuration census reproducing
//!   **Theorem 1** (detectable CAS needs `2^N − 1` shared-memory
//!   configurations, and Algorithm 2 realizes them);
//! * [`aux_state`] — the **Theorem 2** experiment (detectability requires
//!   externally provided auxiliary state; withholding it produces the
//!   Figure 2 violation);
//! * [`perturb`] — machine-checks the doubly-perturbing classification
//!   (Lemmas 3–8);
//! * [`scenario`] — the **front door**: the composable [`Scenario`] builder
//!   (object + memory model + [`workload`] + fault model) whose terminal
//!   runners lower onto all of the strategies above and return one shared
//!   [`Verdict`], and the [`Sweep`] batch layer that fans scenarios across
//!   seed ranges / object kinds / crash probabilities on worker threads;
//! * [`report`] — Markdown and JSON rendering for verdicts and sweep
//!   reports.
//!
//! The engines beneath the `Scenario` runners (`sim_engine`,
//! `explore_engine`, `census_drive_engine`, `census_bfs_engine`,
//! `witness_search`) are exported for engine-level equivalence tests and
//! bespoke measurement loops; the pre-`Scenario` deprecated free functions
//! (`run_sim`, `explore`, `census_drive`, `census_bfs`,
//! `find_doubly_perturbing_witness`) were removed after their one-release
//! grace period.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aux_state;
pub mod census;
pub mod driver;
pub mod explore;
pub mod external;
pub mod history;
pub mod linearize;
pub mod perturb;
pub mod process_crash;
pub mod report;
pub mod scenario;
pub mod sched;
pub mod sim;
pub mod spec;
pub mod workload;

pub use aux_state::{probe_aux_state, theorem2_script};
pub use census::{
    census_bfs_engine, census_bfs_snapshot_engine, census_drive_engine, gray_code_cas_ops,
    BfsConfig, CensusReport,
};
pub use driver::{op_from_key, op_key, Driver, ProcState, RetryPolicy, StepOutcome};
pub use explore::{explore_engine, ExploreConfig, ExploreOutcome, OpSource, SymmetryMode};
pub use external::{census_bfs_external_engine, SpillStats};
pub use history::{Event, History, OpRecord, Outcome};
pub use linearize::{
    check_execution, check_history, check_records, check_records_windowed, Violation,
    MAX_CHECKED_OPS,
};
pub use perturb::{
    default_alphabet, render_witness, validate_witness_on_impl, witness_search, PerturbWitness,
};
pub use process_crash::{
    default_factory, kind_from_name, kind_name, maybe_run_worker, run_cycle, CrashCycleConfig,
    CycleReport, WorldFactory,
};
pub use report::{census_table_json, markdown_table, verdicts_to_json};
pub use scenario::{
    build_kind, resolve_parallelism, AggregateRow, CrashModel, RunMode, RunStats, Runner, Scenario,
    Sweep, SweepCell, SweepReport, Verdict,
};
pub use sched::SchedStats;
pub use sim::{build_world, build_world_mode, sim_engine, SimConfig, SimReport};
pub use spec::{spec_apply, spec_init, spec_run, SpecState};
pub use workload::{mixed_op, ResolvedWorkload, Workload};
