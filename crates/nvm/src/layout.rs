//! Memory layout: named shared and private NVM regions with space accounting.
//!
//! Objects allocate their NVM cells through a [`LayoutBuilder`] at
//! construction time. The frozen [`Layout`] then provides
//!
//! * the total word count for backing stores,
//! * **logical bit accounting** — each region declares how many bits of each
//!   word are logically used, so the space tables of the evaluation (paper
//!   Sections 3–4 claim Θ(N)-bit bounds) report true algorithmic space rather
//!   than the 64-bit simulation cells, and
//! * the shared/private split needed for Theorem 1's notion of
//!   *memory-equivalence*, which quantifies only over **shared** variables.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::word::{Pid, Word};

/// The address of one NVM word.
///
/// Locations are produced by [`LayoutBuilder`] and are plain indices into the
/// flat word array; [`Loc::at`] derives element addresses inside a region.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Loc(pub(crate) u32);

impl Loc {
    /// The location `i` words after `self` (array indexing within a region).
    pub fn at(self, i: usize) -> Loc {
        Loc(self.0 + i as u32)
    }

    /// The raw word index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Whether a region lives in shared memory or is private to one process.
///
/// Private regions model the paper's "non-volatile private variables that
/// reside in the NVM but are accessed only by p" (Section 2). The simulated
/// memory enforces the access discipline with a runtime check.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Space {
    /// Accessible by every process; counted by Theorem 1's memory-equivalence.
    Shared,
    /// Accessible only by the owning process.
    Private(Pid),
}

/// A named, contiguous run of NVM words with declared logical width.
#[derive(Clone, Debug)]
pub struct Region {
    name: String,
    space: Space,
    base: Loc,
    words: u32,
    bits_per_word: u32,
}

impl Region {
    /// The region's name (for space tables and diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shared or private.
    pub fn space(&self) -> Space {
        self.space
    }

    /// First word of the region.
    pub fn base(&self) -> Loc {
        self.base
    }

    /// Number of words.
    pub fn words(&self) -> u32 {
        self.words
    }

    /// Declared logical bits per word (≤ 64).
    pub fn bits_per_word(&self) -> u32 {
        self.bits_per_word
    }

    /// Total logical bits in the region.
    pub fn logical_bits(&self) -> u64 {
        u64::from(self.words) * u64::from(self.bits_per_word)
    }

    fn contains(&self, loc: Loc) -> bool {
        loc.0 >= self.base.0 && loc.0 < self.base.0 + self.words
    }
}

/// Incrementally allocates NVM regions; frozen into a [`Layout`].
///
/// # Example
///
/// ```
/// use nvm::{LayoutBuilder, Pid};
/// let mut b = LayoutBuilder::new();
/// let r = b.shared("R", 1, 41);               // one 41-bit register
/// let a = b.shared("A", 4 * 4 * 2, 1);        // N×N×2 toggle bits, N = 4
/// let rd = b.private_array("RD", 4, 1, 42);   // one word per process
/// let layout = b.finish();
/// assert_eq!(layout.shared_bits(), 41 + 32);
/// assert_eq!(layout.private_bits(), 4 * 42);
/// # let _ = (r, a, rd);
/// ```
#[derive(Debug, Default)]
pub struct LayoutBuilder {
    regions: Vec<Region>,
    next: u32,
}

impl LayoutBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn alloc(&mut self, name: String, space: Space, words: u32, bits_per_word: u32) -> Loc {
        assert!(words > 0, "empty region {name}");
        assert!(
            (1..=64).contains(&bits_per_word),
            "region {name}: bits_per_word must be in 1..=64"
        );
        let base = Loc(self.next);
        self.next = self
            .next
            .checked_add(words)
            .expect("layout exceeds u32 address space");
        self.regions.push(Region {
            name,
            space,
            base,
            words,
            bits_per_word,
        });
        base
    }

    /// Allocates a shared region of `words` cells, `bits_per_word` logical
    /// bits each, returning its base location.
    pub fn shared(&mut self, name: &str, words: u32, bits_per_word: u32) -> Loc {
        self.alloc(name.to_owned(), Space::Shared, words, bits_per_word)
    }

    /// Allocates a private region owned by `pid`.
    pub fn private(&mut self, pid: Pid, name: &str, words: u32, bits_per_word: u32) -> Loc {
        self.alloc(
            format!("{name}[{pid}]"),
            Space::Private(pid),
            words,
            bits_per_word,
        )
    }

    /// Allocates one private region of `words_per` cells for each of `n`
    /// processes, contiguously. Process `p`'s slice starts at
    /// `base.at(p.idx() * words_per)`.
    pub fn private_array(&mut self, name: &str, n: u32, words_per: u32, bits_per_word: u32) -> Loc {
        let base = self.next;
        for pid in Pid::all(n) {
            self.private(pid, name, words_per, bits_per_word);
        }
        Loc(base)
    }

    /// Freezes the layout.
    pub fn finish(self) -> Layout {
        let mut shared = vec![false; self.next as usize];
        for r in &self.regions {
            if r.space == Space::Shared {
                for i in 0..r.words {
                    shared[(r.base.0 + i) as usize] = true;
                }
            }
        }
        let private_slots = Self::private_slots(&self.regions);
        // Region lookup table: regions are allocated contiguously in address
        // order, so a sorted Vec supports binary search by base address.
        Layout {
            regions: self.regions,
            total_words: self.next,
            shared_mask: shared,
            private_slots,
        }
    }

    /// Computes the per-process private-cell correspondence used by
    /// process-symmetry canonicalization (see [`Layout::private_slots`]).
    ///
    /// Private regions must come in *uniform groups* — maximal runs of
    /// consecutive regions owned by processes `0, 1, …, N−1` in order, all
    /// with the same word count and width, exactly the pattern
    /// [`LayoutBuilder::private_array`] emits — and every group must agree
    /// on `N`. Anything else (a bare [`LayoutBuilder::private`] region, or
    /// objects built for different process counts in one world) yields
    /// `None`: the correspondence would be guesswork, so permutation-based
    /// reductions are simply unavailable for that layout.
    fn private_slots(regions: &[Region]) -> Option<Vec<Vec<u32>>> {
        let mut slots: Option<Vec<Vec<u32>>> = None;
        let mut i = 0;
        while i < regions.len() {
            let Space::Private(first) = regions[i].space else {
                i += 1;
                continue;
            };
            if first != Pid::new(0) {
                return None;
            }
            let (words, bits) = (regions[i].words, regions[i].bits_per_word);
            let mut m = 0;
            while let Some(r) = regions.get(i + m) {
                if r.space == Space::Private(Pid::new(m as u32))
                    && r.words == words
                    && r.bits_per_word == bits
                {
                    m += 1;
                } else {
                    break;
                }
            }
            let slots = slots.get_or_insert_with(|| vec![Vec::new(); m]);
            if slots.len() != m {
                return None;
            }
            for (pid_slots, r) in slots.iter_mut().zip(&regions[i..i + m]) {
                pid_slots.extend(r.base.0..r.base.0 + r.words);
            }
            i += m;
        }
        slots
    }
}

/// A frozen memory layout shared by all memory back-ends.
#[derive(Clone, Debug)]
pub struct Layout {
    regions: Vec<Region>,
    total_words: u32,
    shared_mask: Vec<bool>,
    private_slots: Option<Vec<Vec<u32>>>,
}

impl Layout {
    /// Total number of words that a backing store must provide.
    pub fn total_words(&self) -> usize {
        self.total_words as usize
    }

    /// All regions, in allocation order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The region containing `loc`, if any.
    pub fn region_of(&self, loc: Loc) -> Option<&Region> {
        // Regions are contiguous and sorted by base address.
        let idx = self
            .regions
            .partition_point(|r| r.base.0 + r.words <= loc.0);
        self.regions.get(idx).filter(|r| r.contains(loc))
    }

    /// Whether `loc` belongs to a shared region.
    pub fn is_shared(&self, loc: Loc) -> bool {
        self.shared_mask.get(loc.index()).copied().unwrap_or(false)
    }

    /// The owner of `loc`'s region, if it is private.
    pub fn owner_of(&self, loc: Loc) -> Option<Pid> {
        match self.region_of(loc).map(Region::space) {
            Some(Space::Private(p)) => Some(p),
            _ => None,
        }
    }

    /// Total logical bits of shared NVM — the quantity bounded by the paper's
    /// Theorem 1.
    pub fn shared_bits(&self) -> u64 {
        self.regions
            .iter()
            .filter(|r| r.space() == Space::Shared)
            .map(Region::logical_bits)
            .sum()
    }

    /// Total logical bits of private NVM across all processes.
    pub fn private_bits(&self) -> u64 {
        self.regions
            .iter()
            .filter(|r| matches!(r.space(), Space::Private(_)))
            .map(Region::logical_bits)
            .sum()
    }

    /// Hashes the shared-region contents of `words`: two configurations with
    /// equal fingerprints are *memory-equivalent* in the sense of Theorem 1
    /// (modulo hash collisions; the census also keeps exact keys).
    pub fn shared_fingerprint(&self, words: &[Word]) -> u64 {
        let mut h = DefaultHasher::new();
        for (i, w) in words.iter().enumerate() {
            if self.shared_mask[i] {
                w.hash(&mut h);
            }
        }
        h.finish()
    }

    /// The per-process private-cell correspondence, when the layout supports
    /// process-id permutation: `private_slots()[p]` lists the word indices
    /// owned by process `p` in allocation order, and for every slot `k` the
    /// cells `private_slots()[·][k]` play the same structural role for their
    /// respective owners (they come from the same
    /// [`private_array`](LayoutBuilder::private_array) group at the same
    /// offset). Renaming process `p` to `q` therefore moves the contents of
    /// slot list `p` onto slot list `q` wholesale.
    ///
    /// `None` when the layout's private allocation is not process-uniform
    /// (bare [`private`](LayoutBuilder::private) regions, or groups built
    /// for differing process counts) — symmetry reductions must then treat
    /// the layout as opaque.
    pub fn private_slots(&self) -> Option<&[Vec<u32>]> {
        self.private_slots.as_deref()
    }

    /// Extracts the shared-region contents of `words` as an exact census key.
    pub fn shared_words(&self, words: &[Word]) -> Vec<Word> {
        words
            .iter()
            .enumerate()
            .filter(|(i, _)| self.shared_mask[*i])
            .map(|(_, w)| *w)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Layout, Loc, Loc, Loc) {
        let mut b = LayoutBuilder::new();
        let r = b.shared("R", 1, 41);
        let a = b.shared("A", 8, 1);
        let rd = b.private_array("RD", 2, 3, 42);
        (b.finish(), r, a, rd)
    }

    #[test]
    fn allocation_is_contiguous() {
        let (l, r, a, rd) = sample();
        assert_eq!(r.index(), 0);
        assert_eq!(a.index(), 1);
        assert_eq!(rd.index(), 9);
        assert_eq!(l.total_words(), 9 + 2 * 3);
    }

    #[test]
    fn loc_at_offsets() {
        let (_, _, a, _) = sample();
        assert_eq!(a.at(3).index(), a.index() + 3);
    }

    #[test]
    fn shared_and_private_bits() {
        let (l, ..) = sample();
        assert_eq!(l.shared_bits(), 41 + 8);
        assert_eq!(l.private_bits(), 2 * 3 * 42);
    }

    #[test]
    fn region_lookup() {
        let (l, r, a, rd) = sample();
        assert_eq!(l.region_of(r).unwrap().name(), "R");
        assert_eq!(l.region_of(a.at(7)).unwrap().name(), "A");
        assert_eq!(l.region_of(rd).unwrap().name(), "RD[p0]");
        assert_eq!(l.region_of(rd.at(3)).unwrap().name(), "RD[p1]");
        assert!(l.region_of(Loc(1000)).is_none());
    }

    #[test]
    fn ownership() {
        let (l, r, _, rd) = sample();
        assert_eq!(l.owner_of(r), None);
        assert_eq!(l.owner_of(rd), Some(Pid::new(0)));
        assert_eq!(l.owner_of(rd.at(5)), Some(Pid::new(1)));
    }

    #[test]
    fn shared_mask() {
        let (l, r, a, rd) = sample();
        assert!(l.is_shared(r));
        assert!(l.is_shared(a.at(7)));
        assert!(!l.is_shared(rd));
        assert!(!l.is_shared(Loc(999)));
    }

    #[test]
    fn fingerprint_depends_only_on_shared_words() {
        let (l, _r, _a, rd) = sample();
        let mut w1 = vec![0u64; l.total_words()];
        let mut w2 = w1.clone();
        w1[rd.index()] = 7; // private difference only
        assert_eq!(l.shared_fingerprint(&w1), l.shared_fingerprint(&w2));
        w2[0] = 1; // shared difference
        assert_ne!(l.shared_fingerprint(&w1), l.shared_fingerprint(&w2));
    }

    #[test]
    fn shared_words_extraction() {
        let (l, r, a, _) = sample();
        let mut w = vec![0u64; l.total_words()];
        w[r.index()] = 5;
        w[a.at(2).index()] = 9;
        let sw = l.shared_words(&w);
        assert_eq!(sw.len(), 9);
        assert_eq!(sw[0], 5);
        assert_eq!(sw[3], 9);
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn empty_region_panics() {
        let mut b = LayoutBuilder::new();
        let _ = b.shared("bad", 0, 1);
    }

    #[test]
    fn private_slots_follow_private_array_groups() {
        let (l, _, _, rd) = sample(); // one group: RD, 2 pids × 3 words
        let slots = l.private_slots().expect("uniform layout");
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0], vec![rd.index() as u32, 10, 11]);
        assert_eq!(slots[1], vec![12, 13, 14]);

        // Two groups concatenate per pid, in region order.
        let mut b = LayoutBuilder::new();
        let _x = b.shared("X", 1, 64);
        let a = b.private_array("A", 3, 2, 64);
        let c = b.private_array("C", 3, 1, 8);
        let l = b.finish();
        let slots = l.private_slots().expect("uniform layout");
        assert_eq!(slots.len(), 3);
        assert_eq!(
            slots[1],
            vec![
                a.at(2).index() as u32,
                a.at(3).index() as u32,
                c.at(1).index() as u32
            ]
        );
    }

    #[test]
    fn private_slots_reject_nonuniform_layouts() {
        // A bare private region (no full 0..n group).
        let mut b = LayoutBuilder::new();
        let _ = b.private(Pid::new(1), "lone", 1, 8);
        assert!(b.finish().private_slots().is_none());

        // Groups with disagreeing process counts.
        let mut b = LayoutBuilder::new();
        let _ = b.private_array("A", 2, 1, 8);
        let _ = b.private_array("B", 3, 1, 8);
        assert!(b.finish().private_slots().is_none());

        // All-shared layouts trivially have no correspondence.
        let mut b = LayoutBuilder::new();
        let _ = b.shared("X", 4, 64);
        assert!(b.finish().private_slots().is_none());
    }
}
