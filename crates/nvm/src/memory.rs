//! Memory back-ends: deterministic simulation and real atomics.
//!
//! The [`Memory`] trait is the only interface algorithms use to touch NVM.
//! Each call is one *primitive operation* in the sense of the paper's model —
//! the unit of atomicity, and the granularity at which crashes are injected.

use std::cell::{Cell, RefCell};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::layout::{Layout, Loc};
use crate::mapped::MappedFile;
use crate::stats::Stats;
use crate::word::{Pid, Word};

/// Atomic primitive operations on non-volatile memory.
///
/// `pid` identifies the executing process; the simulated back-end uses it to
/// enforce private-region ownership and to attribute operation counts.
pub trait Memory {
    /// Atomically reads the word at `loc`.
    fn read(&self, pid: Pid, loc: Loc) -> Word;

    /// Atomically writes `val` to `loc`.
    fn write(&self, pid: Pid, loc: Loc, val: Word);

    /// Atomically compares-and-swaps `loc` from `old` to `new`; returns
    /// whether the swap happened.
    fn cas(&self, pid: Pid, loc: Loc, old: Word, new: Word) -> bool;

    /// Explicitly persists the cell at `loc` (shared-cache model). A no-op in
    /// the private-cache model and on real atomics, where every primitive is
    /// applied directly to NVM.
    fn persist(&self, pid: Pid, loc: Loc);

    /// The layout this memory was built from.
    fn layout(&self) -> &Layout;
}

/// Which persistence model the simulated memory follows (paper Sections 2, 6).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum CacheMode {
    /// The paper's presentation model: primitives are applied directly to
    /// NVM; nothing is lost on a crash except process-local state.
    #[default]
    PrivateCache,
    /// The realistic model of Izraelevitz et al.: primitives are applied to a
    /// volatile cache; dirty cells survive a crash only if persisted
    /// explicitly (or written back by the crash policy).
    SharedCache,
}

/// What happens to dirty (unpersisted) cache cells at a crash.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CrashPolicy {
    /// Adversarial: every dirty cell is lost. The default for testing.
    DropAll,
    /// Benign: every dirty cell is written back (equivalent to the
    /// private-cache model).
    PersistAll,
    /// Each dirty cell is independently persisted or dropped, decided by a
    /// deterministic PRNG seeded with the given seed and the crash ordinal.
    RandomSubset(u64),
}

/// A restorable copy of the full simulated memory state.
///
/// Snapshots are full copies: capture and restore cost O(memory size). The
/// breadth-first census uses them because it revisits states in arbitrary
/// order. Depth-first exploration should prefer the cheaper LIFO
/// [`SimMemory::checkpoint`] / [`SimMemory::rollback`] pair, whose cost is
/// O(writes since the checkpoint).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MemSnapshot {
    nvm: Vec<Word>,
    cache: BTreeMap<u32, Word>,
    crashes: u64,
}

/// A lightweight undo-log mark produced by [`SimMemory::checkpoint`].
///
/// Checkpoints are strictly nested (LIFO): roll back the most recent one
/// first. [`SimMemory::rollback`] asserts the discipline.
#[derive(Debug)]
#[must_use = "a checkpoint keeps the undo journal alive until rolled back or discarded"]
pub struct Checkpoint {
    mark: usize,
    depth: usize,
}

/// One reversible mutation in the undo journal.
#[derive(Debug)]
enum UndoEntry {
    /// `nvm[idx]` held `old` before the mutation.
    Nvm { idx: u32, old: Word },
    /// The cache entry for `idx` was `old` (`None` = absent) before.
    Cache { idx: u32, old: Option<Word> },
    /// The crash counter held `old` before.
    Crashes { old: u64 },
    /// Fallback for whole-state mutations (`restore` under journaling).
    Full(Box<MemSnapshot>),
}

/// Where the NVM half of a [`SimMemory`] lives.
///
/// `Ram` is the default and behaves exactly as the pre-existing
/// `Vec<Word>` field did — every in-process engine runs on it unchanged.
/// `Mapped` routes the same word array into a [`MappedFile`], committing
/// each NVM store at the moment the simulator commits it, so a crashed
/// child process's survivors can be recovered by a parent through the
/// ordinary `SimMemory` API.
#[derive(Debug)]
enum NvmStore {
    /// In-process heap words (the historical backing).
    Ram(Vec<Word>),
    /// Words in a `MAP_SHARED` file; stores go through atomics + `msync`.
    Mapped(MappedFile),
}

impl NvmStore {
    #[inline]
    fn len(&self) -> usize {
        match self {
            NvmStore::Ram(v) => v.len(),
            NvmStore::Mapped(f) => f.words(),
        }
    }

    #[inline]
    fn get(&self, idx: usize) -> Word {
        match self {
            NvmStore::Ram(v) => v[idx],
            NvmStore::Mapped(f) => f.word(idx).load(Ordering::SeqCst),
        }
    }

    #[inline]
    fn set(&mut self, idx: usize, val: Word) {
        match self {
            NvmStore::Ram(v) => v[idx] = val,
            NvmStore::Mapped(f) => {
                f.word(idx).store(val, Ordering::SeqCst);
                f.sync_async();
            }
        }
    }

    fn to_vec(&self) -> Vec<Word> {
        match self {
            NvmStore::Ram(v) => v.clone(),
            NvmStore::Mapped(f) => f.to_vec(),
        }
    }

    fn copy_from(&mut self, words: &[Word]) {
        match self {
            NvmStore::Ram(v) => v.copy_from_slice(words),
            NvmStore::Mapped(f) => {
                assert_eq!(words.len(), f.words(), "image width != mapped words");
                for (i, &w) in words.iter().enumerate() {
                    f.word(i).store(w, Ordering::SeqCst);
                }
                f.sync_async();
            }
        }
    }

    fn extend_into(&self, out: &mut Vec<Word>) {
        match self {
            NvmStore::Ram(v) => out.extend(v.iter().copied()),
            NvmStore::Mapped(f) => {
                out.extend((0..f.words()).map(|i| f.word(i).load(Ordering::SeqCst)))
            }
        }
    }

    fn hash_into(&self, h: &mut DefaultHasher) {
        match self {
            // Identical to hashing the old `Vec<Word>` field directly.
            NvmStore::Ram(v) => v.hash(h),
            NvmStore::Mapped(f) => f.to_vec().hash(h),
        }
    }
}

/// Deterministic single-threaded simulated NVM.
///
/// Supports both cache modes, system-wide crashes, snapshot/restore (used by
/// the exhaustive explorer), shared-state fingerprints (used by the Theorem 1
/// census) and per-process operation statistics.
///
/// # Example
///
/// ```
/// use nvm::{CacheMode, CrashPolicy, LayoutBuilder, Memory, Pid, SimMemory};
/// let mut b = LayoutBuilder::new();
/// let x = b.shared("X", 1, 64);
/// let mem = SimMemory::with_mode(b.finish(), CacheMode::SharedCache);
/// let p = Pid::new(0);
///
/// mem.write(p, x, 7);          // lands in the volatile cache
/// mem.crash(CrashPolicy::DropAll);
/// assert_eq!(mem.read(p, x), 0); // lost: never persisted
///
/// mem.write(p, x, 7);
/// mem.persist(p, x);           // explicit persist survives the crash
/// mem.crash(CrashPolicy::DropAll);
/// assert_eq!(mem.read(p, x), 7);
/// ```
#[derive(Debug)]
pub struct SimMemory {
    layout: Arc<Layout>,
    nvm: RefCell<NvmStore>,
    cache: RefCell<BTreeMap<u32, Word>>,
    mode: CacheMode,
    stats: RefCell<Stats>,
    crashes: RefCell<u64>,
    check_ownership: bool,
    touched_shared: Cell<bool>,
    journal: RefCell<Vec<UndoEntry>>,
    journal_depth: Cell<usize>,
}

impl SimMemory {
    /// Creates a zero-initialized memory in the private-cache model.
    pub fn new(layout: Layout) -> Self {
        Self::with_mode(layout, CacheMode::PrivateCache)
    }

    /// Creates a zero-initialized memory in the given cache mode.
    pub fn with_mode(layout: Layout, mode: CacheMode) -> Self {
        let words = layout.total_words();
        SimMemory {
            layout: Arc::new(layout),
            nvm: RefCell::new(NvmStore::Ram(vec![0; words])),
            cache: RefCell::new(BTreeMap::new()),
            mode,
            stats: RefCell::new(Stats::default()),
            crashes: RefCell::new(0),
            check_ownership: true,
            touched_shared: Cell::new(false),
            journal: RefCell::new(Vec::new()),
            journal_depth: Cell::new(0),
        }
    }

    /// Creates a memory whose NVM half lives in `file` (a [`MappedFile`]
    /// spanning exactly `layout.total_words()` data words), taking the
    /// file's current contents as the initial state and the file's crash
    /// ordinal as the crash counter.
    ///
    /// Every NVM commit — a private-cache primitive, a `persist`, a crash
    /// write-back — is stored into the mapping (and `msync`'d) at the
    /// moment the simulator commits it, so a parent process recovering a
    /// SIGKILLed child drives the ordinary `SimMemory` API over the
    /// survivors. The volatile cache overlay stays in-process, as it
    /// should: it models exactly the state a crash loses.
    ///
    /// # Panics
    ///
    /// Panics if `file` does not span the layout.
    pub fn with_backing(layout: Layout, mode: CacheMode, file: MappedFile) -> Self {
        assert_eq!(
            file.words(),
            layout.total_words(),
            "mapped file does not span the layout"
        );
        let crashes = file.crash_count();
        SimMemory {
            layout: Arc::new(layout),
            nvm: RefCell::new(NvmStore::Mapped(file)),
            cache: RefCell::new(BTreeMap::new()),
            mode,
            stats: RefCell::new(Stats::default()),
            crashes: RefCell::new(crashes),
            check_ownership: true,
            touched_shared: Cell::new(false),
            journal: RefCell::new(Vec::new()),
            journal_depth: Cell::new(0),
        }
    }

    /// An independent copy of this memory's current logical state (layout
    /// shared, NVM/cache/crash-counter cloned, statistics and journal
    /// fresh). The parallel explorer gives each worker thread its own fork.
    /// A fork always lives in RAM, even when forked from a mapped backing.
    pub fn fork(&self) -> SimMemory {
        SimMemory {
            layout: Arc::clone(&self.layout),
            nvm: RefCell::new(NvmStore::Ram(self.nvm.borrow().to_vec())),
            cache: RefCell::new(self.cache.borrow().clone()),
            mode: self.mode,
            stats: RefCell::new(Stats::default()),
            crashes: RefCell::new(*self.crashes.borrow()),
            check_ownership: self.check_ownership,
            touched_shared: Cell::new(false),
            journal: RefCell::new(Vec::new()),
            journal_depth: Cell::new(0),
        }
    }

    /// Clears the shared-access flag (see [`shared_touched`]).
    ///
    /// [`shared_touched`]: Self::shared_touched
    pub fn reset_shared_touch(&self) {
        self.touched_shared.set(false);
    }

    /// Whether any primitive has touched a **shared** cell since the last
    /// [`reset_shared_touch`](Self::reset_shared_touch). The exhaustive
    /// explorer uses this for partial-order reduction: steps that only touch
    /// a process's private cells commute with every other process's actions.
    pub fn shared_touched(&self) -> bool {
        self.touched_shared.get()
    }

    fn note_touch(&self, loc: Loc) {
        if self.layout.is_shared(loc) {
            self.touched_shared.set(true);
        }
    }

    /// Disables the private-region ownership assertion (used by harness code
    /// that legitimately inspects another process's announcement cells).
    pub fn set_ownership_checks(&mut self, on: bool) {
        self.check_ownership = on;
    }

    /// The cache mode this memory simulates.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    fn check_access(&self, pid: Pid, loc: Loc) {
        if self.check_ownership {
            if let Some(owner) = self.layout.owner_of(loc) {
                assert_eq!(
                    owner, pid,
                    "model violation: {pid} accessed private cell {loc} owned by {owner}"
                );
            }
        }
        assert!(
            loc.index() < self.layout.total_words(),
            "access outside layout: {loc}"
        );
    }

    /// The current logical value of `loc` (cache overlay over NVM), without
    /// ownership checks or statistics. For harness/checker use.
    pub fn peek(&self, loc: Loc) -> Word {
        if let Some(&w) = self.cache.borrow().get(&(loc.index() as u32)) {
            return w;
        }
        self.nvm.borrow().get(loc.index())
    }

    /// Directly sets the logical value of `loc`, bypassing the model (used by
    /// tests to fabricate states). In shared-cache mode the value is written
    /// through to NVM.
    pub fn poke(&self, loc: Loc, val: Word) {
        self.log_cache(loc.index());
        self.log_nvm(loc.index());
        self.cache.borrow_mut().remove(&(loc.index() as u32));
        self.nvm.borrow_mut().set(loc.index(), val);
    }

    /// Simulates a system-wide crash: dirty cache cells are persisted or
    /// dropped per `policy`, then the cache is cleared. Local (volatile)
    /// state of processes is *not* this type's concern — the driver drops the
    /// in-flight step machines.
    pub fn crash(&self, policy: CrashPolicy) {
        let journaling = self.journaling();
        let mut cache = self.cache.borrow_mut();
        let mut nvm = self.nvm.borrow_mut();
        let ordinal = {
            let mut c = self.crashes.borrow_mut();
            if journaling {
                self.journal
                    .borrow_mut()
                    .push(UndoEntry::Crashes { old: *c });
            }
            *c += 1;
            *c
        };
        let mut write_back = |journal: &RefCell<Vec<UndoEntry>>, i: u32, w: Word| {
            if journaling {
                journal.borrow_mut().push(UndoEntry::Nvm {
                    idx: i,
                    old: nvm.get(i as usize),
                });
            }
            nvm.set(i as usize, w);
        };
        match policy {
            CrashPolicy::DropAll => {}
            CrashPolicy::PersistAll => {
                for (&i, &w) in cache.iter() {
                    write_back(&self.journal, i, w);
                }
            }
            CrashPolicy::RandomSubset(seed) => {
                let mut state = seed ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                for (&i, &w) in cache.iter() {
                    // xorshift64*
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    if state & 1 == 1 {
                        write_back(&self.journal, i, w);
                    }
                }
            }
        }
        if journaling {
            let mut journal = self.journal.borrow_mut();
            for (&i, &w) in cache.iter() {
                journal.push(UndoEntry::Cache {
                    idx: i,
                    old: Some(w),
                });
            }
        }
        cache.clear();
        self.stats.borrow_mut().crashes += 1;
    }

    /// Number of crashes simulated so far.
    pub fn crash_count(&self) -> u64 {
        *self.crashes.borrow()
    }

    // ── undo-log journaling ──────────────────────────────────────────────

    fn journaling(&self) -> bool {
        self.journal_depth.get() > 0
    }

    fn log_nvm(&self, idx: usize) {
        if self.journaling() {
            self.journal.borrow_mut().push(UndoEntry::Nvm {
                idx: idx as u32,
                old: self.nvm.borrow().get(idx),
            });
        }
    }

    fn log_cache(&self, idx: usize) {
        if self.journaling() {
            self.journal.borrow_mut().push(UndoEntry::Cache {
                idx: idx as u32,
                old: self.cache.borrow().get(&(idx as u32)).copied(),
            });
        }
    }

    /// Opens an undo-log checkpoint: every subsequent mutation (including
    /// crashes and nested `restore`s) is journaled until the matching
    /// [`rollback`](Self::rollback). Cost: O(1) now, O(writes since the
    /// checkpoint) to roll back — the cheap branch primitive for depth-first
    /// state-space exploration, replacing full-copy [`snapshot`]s.
    ///
    /// Checkpoints nest LIFO; each must be rolled back (or leaked — see
    /// [`discard`](Self::discard)) in reverse order of creation.
    ///
    /// [`snapshot`]: Self::snapshot
    pub fn checkpoint(&self) -> Checkpoint {
        let depth = self.journal_depth.get() + 1;
        self.journal_depth.set(depth);
        self.stats.borrow_mut().checkpoints += 1;
        Checkpoint {
            mark: self.journal.borrow().len(),
            depth,
        }
    }

    /// Rewinds every mutation journaled since `cp` was taken, consuming it.
    /// Statistics are not rewound (matching [`restore`](Self::restore)).
    ///
    /// # Panics
    ///
    /// Panics if `cp` is not the innermost live checkpoint (LIFO violation).
    pub fn rollback(&self, cp: Checkpoint) {
        assert_eq!(
            cp.depth,
            self.journal_depth.get(),
            "checkpoint rollback out of LIFO order"
        );
        let mut journal = self.journal.borrow_mut();
        let mut nvm = self.nvm.borrow_mut();
        let mut cache = self.cache.borrow_mut();
        while journal.len() > cp.mark {
            match journal.pop().expect("journal length checked") {
                UndoEntry::Nvm { idx, old } => nvm.set(idx as usize, old),
                UndoEntry::Cache { idx, old } => match old {
                    Some(w) => {
                        cache.insert(idx, w);
                    }
                    None => {
                        cache.remove(&idx);
                    }
                },
                UndoEntry::Crashes { old } => *self.crashes.borrow_mut() = old,
                UndoEntry::Full(snap) => {
                    nvm.copy_from(&snap.nvm);
                    cache.clone_from(&snap.cache);
                    *self.crashes.borrow_mut() = snap.crashes;
                }
            }
        }
        self.journal_depth.set(cp.depth - 1);
        self.stats.borrow_mut().rollbacks += 1;
    }

    /// Closes `cp` without rewinding: the mutations made since it stand,
    /// and its journal entries are absorbed by the enclosing checkpoint (or
    /// dropped if it was outermost).
    ///
    /// # Panics
    ///
    /// Panics if `cp` is not the innermost live checkpoint.
    pub fn discard(&self, cp: Checkpoint) {
        assert_eq!(
            cp.depth,
            self.journal_depth.get(),
            "checkpoint discard out of LIFO order"
        );
        self.journal_depth.set(cp.depth - 1);
        if cp.depth == 1 {
            self.journal.borrow_mut().clear();
        }
    }

    /// Canonical fingerprint of the complete simulated state: NVM contents,
    /// the dirty-cache overlay (dirtiness included — two states with equal
    /// logical values but different unpersisted sets behave differently at
    /// the next crash), and the crash ordinal (which seeds
    /// [`CrashPolicy::RandomSubset`]). Two `SimMemory` states with equal
    /// `state_hash` are indistinguishable to every future primitive, crash,
    /// and persist (modulo hash collisions). The exhaustive explorer keys
    /// its visited-set on this.
    pub fn state_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.nvm.borrow().hash_into(&mut h);
        for (&i, &w) in self.cache.borrow().iter() {
            (i, w).hash(&mut h);
        }
        self.crashes.borrow().hash(&mut h);
        h.finish()
    }

    /// Captures the full NVM + cache state.
    pub fn snapshot(&self) -> MemSnapshot {
        MemSnapshot {
            nvm: self.nvm.borrow().to_vec(),
            cache: self.cache.borrow().clone(),
            crashes: *self.crashes.borrow(),
        }
    }

    /// Restores a previously captured state. Statistics are not restored.
    /// Under an open [`checkpoint`](Self::checkpoint) the restore itself is
    /// journaled (as a full-state entry) so `rollback` stays correct.
    pub fn restore(&self, snap: &MemSnapshot) {
        if self.journaling() {
            self.journal
                .borrow_mut()
                .push(UndoEntry::Full(Box::new(self.snapshot())));
        }
        self.nvm.borrow_mut().copy_from(&snap.nvm);
        *self.cache.borrow_mut() = snap.cache.clone();
        *self.crashes.borrow_mut() = snap.crashes;
    }

    /// Fills `out` (cleared first) with the logical contents of all NVM —
    /// the allocation-free [`full_key`](Self::full_key), for hot loops that
    /// read the image into a reusable scratch buffer (the census reads one
    /// per generated successor).
    pub fn logical_words_into(&self, out: &mut Vec<Word>) {
        out.clear();
        self.nvm.borrow().extend_into(out);
        for (&i, &w) in self.cache.borrow().iter() {
            out[i as usize] = w;
        }
    }

    /// Installs `words` as the memory's logical contents: NVM takes the
    /// image verbatim and the cache is cleared (every cell persisted). The
    /// crash ordinal is untouched.
    ///
    /// This is the restore half of the census arena: for **crash-free**
    /// continuations a state is fully determined by its logical words
    /// ([`logical_hash`](Self::logical_hash) makes the same identification),
    /// so a search node can be reconstituted from the interned image alone.
    /// Searches that inject crashes must keep full [`snapshot`]s — dirtiness
    /// is behavior there, and this method erases it.
    ///
    /// Under an open [`checkpoint`](Self::checkpoint) the load is journaled
    /// (as a full-state entry) so `rollback` stays correct.
    ///
    /// # Panics
    ///
    /// Panics if `words` does not span the layout exactly.
    ///
    /// [`snapshot`]: Self::snapshot
    pub fn load_words(&self, words: &[Word]) {
        assert_eq!(
            words.len(),
            self.layout.total_words(),
            "logical image width != layout words"
        );
        if self.journaling() {
            self.journal
                .borrow_mut()
                .push(UndoEntry::Full(Box::new(self.snapshot())));
        }
        self.nvm.borrow_mut().copy_from(words);
        self.cache.borrow_mut().clear();
    }

    /// Salted hash of the *logical* contents of all NVM (cache overlay
    /// applied; dirtiness and the crash ordinal excluded) — the
    /// allocation-free equivalent of hashing [`full_key`](Self::full_key).
    /// Crash-free searches (the census) key on this: two states with equal
    /// logical words behave identically under every future primitive, and
    /// distinguishing them by unpersisted-set — as
    /// [`state_hash`](Self::state_hash) does — would split states a
    /// full-key engine merges. The salt feeds the hash *before* the words,
    /// so an engine building a wide fingerprint from several salts gets
    /// independently-colliding halves rather than one 64-bit hash copied.
    pub fn logical_hash(&self, salt: u64) -> u64 {
        let nvm = self.nvm.borrow();
        let cache = self.cache.borrow();
        let mut h = DefaultHasher::new();
        salt.hash(&mut h);
        nvm.len().hash(&mut h);
        let mut overlay = cache.iter().peekable();
        for i in 0..nvm.len() {
            let w = match overlay.peek() {
                Some(&(&ci, &cw)) if ci as usize == i => {
                    overlay.next();
                    cw
                }
                _ => nvm.get(i),
            };
            w.hash(&mut h);
        }
        h.finish()
    }

    /// Fills `out` with this memory's word contents under the process-id
    /// permutation `perm` (`perm[p]` is the new identity of process `p`):
    /// private cells are relocated wholesale along the layout's
    /// [`private_slots`](Layout::private_slots) correspondence, shared cells
    /// are copied verbatim. With `overlay` the *logical* values are taken
    /// (cache overlay applied); without it the raw NVM contents, so
    /// shared-cache explorers can canonicalize the `(NVM, logical)` pair
    /// that determines all future behavior.
    ///
    /// This is the layout-generic half of orbit canonicalization for
    /// symmetry-reduced search: pid-dependent encodings *inside* words
    /// (packed per-process bit vectors, stored process ids) are the
    /// object's business — see `RecoverableObject::permute_memory` in the
    /// `detectable` crate, which rewrites them in the filled buffer.
    ///
    /// Returns `false` (leaving `out` unspecified) when the layout has no
    /// private-cell correspondence or `perm`'s length disagrees with it.
    pub fn logical_words_permuted(&self, perm: &[u32], overlay: bool, out: &mut Vec<Word>) -> bool {
        let Some(slots) = self.layout.private_slots() else {
            return false;
        };
        if slots.len() != perm.len() {
            return false;
        }
        debug_assert!(
            {
                let mut seen = vec![false; perm.len()];
                perm.iter().all(|&q| {
                    (q as usize) < seen.len() && !std::mem::replace(&mut seen[q as usize], true)
                })
            },
            "perm is not a permutation: {perm:?}"
        );
        out.clear();
        self.nvm.borrow().extend_into(out);
        if overlay {
            for (&i, &w) in self.cache.borrow().iter() {
                out[i as usize] = w;
            }
        }
        if perm.iter().enumerate().all(|(p, &q)| p as u32 == q) {
            return true; // identity: nothing moves
        }
        let gathered: Vec<Word> = slots
            .iter()
            .flat_map(|cells| cells.iter().map(|&c| out[c as usize]))
            .collect();
        let per = slots[0].len();
        for (p, &q) in perm.iter().enumerate() {
            for (k, &dst) in slots[q as usize].iter().enumerate() {
                out[dst as usize] = gathered[p * per + k];
            }
        }
        true
    }

    /// Hash of the logical shared-memory state (Theorem 1's
    /// memory-equivalence classes, up to hash collision).
    pub fn shared_fingerprint(&self) -> u64 {
        self.layout.shared_fingerprint(&self.logical_words())
    }

    /// Exact logical shared-memory contents, usable as a census key.
    /// Builds the shared slice directly (cache overlay applied per cell)
    /// instead of materializing the full logical word vector — this runs
    /// once per generated successor on the census hot path.
    pub fn shared_key(&self) -> Vec<Word> {
        let nvm = self.nvm.borrow();
        let cache = self.cache.borrow();
        if cache.is_empty() {
            (0..nvm.len())
                .filter(|&i| self.layout.is_shared(Loc(i as u32)))
                .map(|i| nvm.get(i))
                .collect()
        } else {
            (0..nvm.len())
                .filter(|&i| self.layout.is_shared(Loc(i as u32)))
                .map(|i| cache.get(&(i as u32)).copied().unwrap_or(nvm.get(i)))
                .collect()
        }
    }

    /// Exact logical contents of *all* NVM (shared and private), usable as a
    /// full-configuration key in state-space searches.
    pub fn full_key(&self) -> Vec<Word> {
        self.logical_words()
    }

    fn logical_words(&self) -> Vec<Word> {
        let mut words = Vec::new();
        self.logical_words_into(&mut words);
        words
    }

    /// A copy of the operation statistics.
    pub fn stats(&self) -> Stats {
        self.stats.borrow().clone()
    }

    /// Resets the operation statistics.
    pub fn reset_stats(&self) {
        *self.stats.borrow_mut() = Stats::default();
    }
}

impl Memory for SimMemory {
    fn read(&self, pid: Pid, loc: Loc) -> Word {
        self.check_access(pid, loc);
        self.note_touch(loc);
        self.stats.borrow_mut().record_read(pid);
        self.peek(loc)
    }

    fn write(&self, pid: Pid, loc: Loc, val: Word) {
        self.check_access(pid, loc);
        self.note_touch(loc);
        self.stats.borrow_mut().record_write(pid);
        match self.mode {
            CacheMode::PrivateCache => {
                self.log_nvm(loc.index());
                self.nvm.borrow_mut().set(loc.index(), val);
            }
            CacheMode::SharedCache => {
                self.log_cache(loc.index());
                self.cache.borrow_mut().insert(loc.index() as u32, val);
            }
        }
    }

    fn cas(&self, pid: Pid, loc: Loc, old: Word, new: Word) -> bool {
        self.check_access(pid, loc);
        self.note_touch(loc);
        let cur = self.peek(loc);
        let ok = cur == old;
        self.stats.borrow_mut().record_cas(pid, ok);
        if ok {
            match self.mode {
                CacheMode::PrivateCache => {
                    self.log_nvm(loc.index());
                    self.nvm.borrow_mut().set(loc.index(), new);
                }
                CacheMode::SharedCache => {
                    self.log_cache(loc.index());
                    self.cache.borrow_mut().insert(loc.index() as u32, new);
                }
            }
        }
        ok
    }

    fn persist(&self, pid: Pid, loc: Loc) {
        self.check_access(pid, loc);
        self.note_touch(loc);
        self.stats.borrow_mut().record_persist(pid);
        if self.mode == CacheMode::SharedCache {
            self.log_cache(loc.index());
            if let Some(w) = self.cache.borrow_mut().remove(&(loc.index() as u32)) {
                self.log_nvm(loc.index());
                self.nvm.borrow_mut().set(loc.index(), w);
            }
        }
    }

    fn layout(&self) -> &Layout {
        &self.layout
    }
}

/// `AtomicU64`-backed memory for multi-threaded benchmarks and stress tests.
///
/// All operations use sequentially consistent ordering, matching the model's
/// assumption that primitives are atomic and totally ordered. `persist` is a
/// no-op: real CPUs persist through cache flushes this harness does not model
/// at benchmark fidelity.
#[derive(Debug)]
pub struct AtomicMemory {
    layout: Arc<Layout>,
    words: Vec<AtomicU64>,
}

impl AtomicMemory {
    /// Creates a zero-initialized atomic memory.
    pub fn new(layout: Layout) -> Self {
        let n = layout.total_words();
        AtomicMemory {
            layout: Arc::new(layout),
            words: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The current value of `loc` (for assertions in tests).
    pub fn peek(&self, loc: Loc) -> Word {
        self.words[loc.index()].load(Ordering::SeqCst)
    }
}

impl Memory for AtomicMemory {
    fn read(&self, _pid: Pid, loc: Loc) -> Word {
        self.words[loc.index()].load(Ordering::SeqCst)
    }

    fn write(&self, _pid: Pid, loc: Loc, val: Word) {
        self.words[loc.index()].store(val, Ordering::SeqCst);
    }

    fn cas(&self, _pid: Pid, loc: Loc, old: Word, new: Word) -> bool {
        self.words[loc.index()]
            .compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    fn persist(&self, _pid: Pid, _loc: Loc) {}

    fn layout(&self) -> &Layout {
        &self.layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutBuilder;

    fn mem(mode: CacheMode) -> (SimMemory, Loc, Loc) {
        let mut b = LayoutBuilder::new();
        let x = b.shared("X", 2, 64);
        let r = b.private_array("RD", 2, 1, 64);
        (SimMemory::with_mode(b.finish(), mode), x, r)
    }

    #[test]
    fn read_write_roundtrip() {
        let (m, x, _) = mem(CacheMode::PrivateCache);
        let p = Pid::new(0);
        m.write(p, x, 11);
        assert_eq!(m.read(p, x), 11);
        assert_eq!(m.read(p, x.at(1)), 0);
    }

    #[test]
    fn cas_semantics() {
        let (m, x, _) = mem(CacheMode::PrivateCache);
        let p = Pid::new(0);
        assert!(m.cas(p, x, 0, 5));
        assert!(!m.cas(p, x, 0, 6));
        assert_eq!(m.read(p, x), 5);
        assert!(m.cas(p, x, 5, 6));
        assert_eq!(m.read(p, x), 6);
    }

    #[test]
    fn private_cache_survives_crash() {
        let (m, x, _) = mem(CacheMode::PrivateCache);
        let p = Pid::new(0);
        m.write(p, x, 9);
        m.crash(CrashPolicy::DropAll);
        assert_eq!(m.read(p, x), 9);
    }

    #[test]
    fn shared_cache_drops_unpersisted() {
        let (m, x, _) = mem(CacheMode::SharedCache);
        let p = Pid::new(0);
        m.write(p, x, 9);
        assert_eq!(m.read(p, x), 9); // visible before the crash
        m.crash(CrashPolicy::DropAll);
        assert_eq!(m.read(p, x), 0);
    }

    #[test]
    fn shared_cache_persist_survives() {
        let (m, x, _) = mem(CacheMode::SharedCache);
        let p = Pid::new(0);
        m.write(p, x, 9);
        m.persist(p, x);
        m.crash(CrashPolicy::DropAll);
        assert_eq!(m.read(p, x), 9);
    }

    #[test]
    fn shared_cache_persist_all_policy() {
        let (m, x, _) = mem(CacheMode::SharedCache);
        let p = Pid::new(0);
        m.write(p, x, 9);
        m.crash(CrashPolicy::PersistAll);
        assert_eq!(m.read(p, x), 9);
    }

    #[test]
    fn shared_cache_cas_applies_to_cache() {
        let (m, x, _) = mem(CacheMode::SharedCache);
        let p = Pid::new(0);
        assert!(m.cas(p, x, 0, 3));
        assert_eq!(m.read(p, x), 3);
        m.crash(CrashPolicy::DropAll);
        // The CAS result was never persisted.
        assert_eq!(m.read(p, x), 0);
    }

    #[test]
    fn random_subset_policy_is_deterministic() {
        let run = |seed| {
            let (m, x, _) = mem(CacheMode::SharedCache);
            let p = Pid::new(0);
            m.write(p, x, 1);
            m.write(p, x.at(1), 2);
            m.crash(CrashPolicy::RandomSubset(seed));
            (m.read(p, x), m.read(p, x.at(1)))
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    #[should_panic(expected = "model violation")]
    fn ownership_is_enforced() {
        let (m, _, rd) = mem(CacheMode::PrivateCache);
        // p1 touches p0's private cell.
        m.read(Pid::new(1), rd);
    }

    #[test]
    fn ownership_allows_owner() {
        let (m, _, rd) = mem(CacheMode::PrivateCache);
        m.write(Pid::new(1), rd.at(1), 3);
        assert_eq!(m.read(Pid::new(1), rd.at(1)), 3);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let (m, x, _) = mem(CacheMode::SharedCache);
        let p = Pid::new(0);
        m.write(p, x, 1);
        m.persist(p, x);
        m.write(p, x.at(1), 2); // dirty
        let snap = m.snapshot();
        m.write(p, x, 100);
        m.persist(p, x);
        m.crash(CrashPolicy::DropAll);
        m.restore(&snap);
        assert_eq!(m.read(p, x), 1);
        assert_eq!(m.read(p, x.at(1)), 2);
    }

    #[test]
    fn fingerprint_ignores_private_cells() {
        let (m, _x, rd) = mem(CacheMode::PrivateCache);
        let f0 = m.shared_fingerprint();
        m.write(Pid::new(0), rd, 55);
        assert_eq!(m.shared_fingerprint(), f0);
        m.write(Pid::new(0), Loc(0), 1);
        assert_ne!(m.shared_fingerprint(), f0);
    }

    #[test]
    fn shared_key_reflects_cache_overlay() {
        let (m, x, _) = mem(CacheMode::SharedCache);
        let p = Pid::new(0);
        m.write(p, x, 77); // dirty, not persisted
        assert_eq!(m.shared_key()[0], 77);
    }

    #[test]
    fn stats_accounting() {
        let (m, x, _) = mem(CacheMode::PrivateCache);
        let p = Pid::new(0);
        m.write(p, x, 1);
        let _ = m.read(p, x);
        let _ = m.cas(p, x, 1, 2);
        let _ = m.cas(p, x, 1, 3);
        m.persist(p, x);
        let s = m.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.cas_ops, 2);
        assert_eq!(s.cas_failures, 1);
        assert_eq!(s.persists, 1);
    }

    #[test]
    fn atomic_memory_matches_semantics() {
        let mut b = LayoutBuilder::new();
        let x = b.shared("X", 1, 64);
        let m = AtomicMemory::new(b.finish());
        let p = Pid::new(0);
        m.write(p, x, 4);
        assert_eq!(m.read(p, x), 4);
        assert!(m.cas(p, x, 4, 5));
        assert!(!m.cas(p, x, 4, 6));
        assert_eq!(m.peek(x), 5);
        m.persist(p, x); // no-op, must not panic
    }

    #[test]
    fn checkpoint_rollback_roundtrip_private_cache() {
        let (m, x, _) = mem(CacheMode::PrivateCache);
        let p = Pid::new(0);
        m.write(p, x, 1);
        let before = m.snapshot();
        let cp = m.checkpoint();
        m.write(p, x, 2);
        assert!(m.cas(p, x, 2, 3));
        m.write(p, x.at(1), 9);
        m.rollback(cp);
        assert_eq!(m.snapshot(), before);
        assert_eq!(m.read(p, x), 1);
        assert_eq!(m.read(p, x.at(1)), 0);
    }

    #[test]
    fn checkpoint_rollback_covers_crash_and_persist() {
        let (m, x, _) = mem(CacheMode::SharedCache);
        let p = Pid::new(0);
        m.write(p, x, 1);
        m.persist(p, x);
        m.write(p, x.at(1), 2); // dirty
        let before = m.snapshot();
        let cp = m.checkpoint();
        m.write(p, x, 7);
        m.persist(p, x);
        m.crash(CrashPolicy::DropAll);
        m.write(p, x.at(1), 8);
        m.crash(CrashPolicy::PersistAll);
        m.rollback(cp);
        assert_eq!(m.snapshot(), before);
        assert_eq!(m.crash_count(), 0);
        assert_eq!(m.read(p, x.at(1)), 2); // dirty value restored to cache
        m.crash(CrashPolicy::DropAll);
        assert_eq!(m.read(p, x.at(1)), 0); // and it is genuinely dirty again
    }

    #[test]
    fn nested_checkpoints_rollback_in_lifo_order() {
        let (m, x, _) = mem(CacheMode::PrivateCache);
        let p = Pid::new(0);
        let outer = m.checkpoint();
        m.write(p, x, 1);
        let inner = m.checkpoint();
        m.write(p, x, 2);
        m.rollback(inner);
        assert_eq!(m.read(p, x), 1);
        m.rollback(outer);
        assert_eq!(m.read(p, x), 0);
    }

    #[test]
    #[should_panic(expected = "LIFO")]
    fn out_of_order_rollback_panics() {
        let (m, x, _) = mem(CacheMode::PrivateCache);
        let outer = m.checkpoint();
        let _inner = m.checkpoint();
        m.write(Pid::new(0), x, 1);
        m.rollback(outer);
    }

    #[test]
    fn discard_keeps_mutations_and_feeds_outer_checkpoint() {
        let (m, x, _) = mem(CacheMode::PrivateCache);
        let p = Pid::new(0);
        let outer = m.checkpoint();
        let inner = m.checkpoint();
        m.write(p, x, 5);
        m.discard(inner);
        assert_eq!(m.read(p, x), 5);
        m.rollback(outer); // the discarded branch's writes still rewind
        assert_eq!(m.read(p, x), 0);
    }

    #[test]
    fn restore_under_checkpoint_is_journaled() {
        let (m, x, _) = mem(CacheMode::SharedCache);
        let p = Pid::new(0);
        m.write(p, x, 1);
        let early = m.snapshot();
        m.write(p, x, 2);
        let before = m.snapshot();
        let cp = m.checkpoint();
        m.restore(&early);
        assert_eq!(m.read(p, x), 1);
        m.rollback(cp);
        assert_eq!(m.snapshot(), before);
    }

    #[test]
    fn state_hash_distinguishes_dirtiness_and_crash_ordinal() {
        let (m, x, _) = mem(CacheMode::SharedCache);
        let p = Pid::new(0);
        m.write(p, x, 5);
        let dirty = m.state_hash();
        m.persist(p, x);
        let clean = m.state_hash();
        // Same logical value, different persistence state.
        assert_ne!(dirty, clean);
        m.crash(CrashPolicy::DropAll);
        // Same logical value and empty cache, but the crash ordinal moved.
        assert_ne!(m.state_hash(), clean);
    }

    #[test]
    fn logical_hash_ignores_dirtiness_and_crash_ordinal() {
        let (m, x, _) = mem(CacheMode::SharedCache);
        let p = Pid::new(0);
        m.write(p, x, 5);
        let dirty = m.logical_hash(0);
        m.persist(p, x);
        // Same logical value, different persistence state: equal.
        assert_eq!(m.logical_hash(0), dirty);
        m.crash(CrashPolicy::PersistAll);
        // Crash ordinal moved, logical contents did not.
        assert_eq!(m.logical_hash(0), dirty);
        m.write(p, x, 6);
        assert_ne!(m.logical_hash(0), dirty);
        // Distinct salts give independent hashes of the same contents.
        assert_ne!(m.logical_hash(0), m.logical_hash(1));
        // And it matches the allocation-free contract: equal full_key ⇒
        // equal logical_hash, across dirty/clean representations.
        let (m2, x2, _) = mem(CacheMode::SharedCache);
        m2.write(p, x2, 6);
        m2.crash(CrashPolicy::PersistAll);
        assert_eq!(m2.full_key(), m.full_key());
        assert_eq!(m2.logical_hash(7), m.logical_hash(7));
    }

    #[test]
    fn shared_key_skips_private_cells_and_applies_overlay() {
        let (m, x, rd) = mem(CacheMode::SharedCache);
        let p = Pid::new(0);
        m.write(p, x, 3); // dirty shared cell
        m.write(p, x.at(1), 4);
        m.persist(p, x.at(1));
        m.write(p, rd, 9); // private: must not appear
        let key = m.shared_key();
        assert_eq!(key, vec![3, 4]);
        // The direct builder agrees with extracting from the full logical
        // vector.
        assert_eq!(key, m.layout.shared_words(&m.full_key()));
    }

    #[test]
    fn state_hash_equal_for_equal_states() {
        let run = || {
            let (m, x, _) = mem(CacheMode::SharedCache);
            let p = Pid::new(0);
            m.write(p, x, 3);
            m.persist(p, x);
            m.write(p, x.at(1), 4);
            m.state_hash()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fork_is_independent() {
        let (m, x, _) = mem(CacheMode::SharedCache);
        let p = Pid::new(0);
        m.write(p, x, 1);
        m.persist(p, x);
        m.write(p, x.at(1), 2); // dirty
        let f = m.fork();
        assert_eq!(f.state_hash(), m.state_hash());
        f.write(p, x, 9);
        assert_eq!(m.read(p, x), 1);
        assert_ne!(f.state_hash(), m.state_hash());
        // Stats start fresh in the fork.
        assert_eq!(f.stats().writes, 1);
    }

    #[test]
    fn logical_words_permuted_relocates_private_slices() {
        let mut b = LayoutBuilder::new();
        let x = b.shared("X", 1, 64);
        let rd = b.private_array("RD", 3, 2, 64);
        let m = SimMemory::new(b.finish());
        m.write(Pid::new(0), x, 99);
        for p in 0..3u32 {
            m.write(Pid::new(p), rd.at(p as usize * 2), u64::from(10 * p));
            m.write(
                Pid::new(p),
                rd.at(p as usize * 2 + 1),
                u64::from(10 * p + 1),
            );
        }
        let mut out = Vec::new();
        // Rotate 0→1→2→0.
        assert!(m.logical_words_permuted(&[1, 2, 0], true, &mut out));
        assert_eq!(out[x.index()], 99, "shared cells stay put");
        // p2's new slice (index 2) holds old p1's data.
        assert_eq!(&out[rd.at(4).index()..=rd.at(5).index()], &[10, 11]);
        // p0's new slice holds old p2's data.
        assert_eq!(&out[rd.at(0).index()..=rd.at(1).index()], &[20, 21]);

        // Identity permutation reproduces full_key.
        assert!(m.logical_words_permuted(&[0, 1, 2], true, &mut out));
        assert_eq!(out, m.full_key());

        // Wrong arity is rejected.
        assert!(!m.logical_words_permuted(&[1, 0], true, &mut out));
    }

    #[test]
    fn logical_words_permuted_overlay_flag_selects_nvm_or_logical() {
        let mut b = LayoutBuilder::new();
        let x = b.shared("X", 1, 64);
        let _rd = b.private_array("RD", 2, 1, 64);
        let m = SimMemory::with_mode(b.finish(), CacheMode::SharedCache);
        m.write(Pid::new(0), x, 7); // dirty: in cache, not NVM
        let mut out = Vec::new();
        assert!(m.logical_words_permuted(&[0, 1], true, &mut out));
        assert_eq!(out[x.index()], 7);
        assert!(m.logical_words_permuted(&[0, 1], false, &mut out));
        assert_eq!(out[x.index()], 0, "raw NVM ignores the dirty overlay");
    }

    #[test]
    fn checkpoint_stats_are_counted() {
        let (m, x, _) = mem(CacheMode::PrivateCache);
        let cp = m.checkpoint();
        m.write(Pid::new(0), x, 1);
        m.rollback(cp);
        let s = m.stats();
        assert_eq!((s.checkpoints, s.rollbacks), (1, 1));
    }

    #[test]
    fn load_words_installs_a_clean_logical_image() {
        let (m, x, _) = mem(CacheMode::SharedCache);
        let p = Pid::new(0);
        m.write(p, x, 5); // dirty
        let mut image = Vec::new();
        m.logical_words_into(&mut image);
        assert_eq!(image, m.full_key(), "scratch read matches full_key");

        let (m2, x2, _) = mem(CacheMode::SharedCache);
        m2.load_words(&image);
        assert_eq!(m2.full_key(), image);
        assert_eq!(m2.logical_hash(3), m.logical_hash(3));
        // The image is installed persisted: a crash loses nothing.
        m2.crash(CrashPolicy::DropAll);
        assert_eq!(m2.read(p, x2), 5);
    }

    #[test]
    fn load_words_under_checkpoint_rolls_back() {
        let (m, x, _) = mem(CacheMode::SharedCache);
        let p = Pid::new(0);
        m.write(p, x, 1); // dirty
        let before = m.snapshot();
        let cp = m.checkpoint();
        m.load_words(&vec![9; m.layout.total_words()]);
        assert_eq!(m.read(p, x), 9);
        m.rollback(cp);
        assert_eq!(m.snapshot(), before, "dirtiness restored too");
    }

    #[test]
    #[should_panic(expected = "layout words")]
    fn load_words_rejects_wrong_width() {
        let (m, _, _) = mem(CacheMode::PrivateCache);
        m.load_words(&[1]);
    }

    #[test]
    fn poke_bypasses_cache() {
        let (m, x, _) = mem(CacheMode::SharedCache);
        let p = Pid::new(0);
        m.write(p, x, 9); // dirty
        m.poke(x, 2);
        assert_eq!(m.read(p, x), 2);
        m.crash(CrashPolicy::DropAll);
        assert_eq!(m.read(p, x), 2); // poke wrote through
    }
}
