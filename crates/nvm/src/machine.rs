//! The step-machine execution framework.
//!
//! Every algorithm in this reproduction is compiled by hand into a state
//! machine whose [`Machine::step`] executes **at most one primitive memory
//! operation** and then returns. This gives the harness three capabilities
//! the paper's model requires:
//!
//! 1. **Crash injection between any two lines** — the driver may simply drop
//!    a machine (its fields are the process's volatile local variables) and
//!    later construct the recovery machine.
//! 2. **Arbitrary interleavings** — a scheduler chooses which process steps
//!    next, at primitive-operation granularity, matching the atomicity unit
//!    of the model.
//! 3. **State-space exploration** — machines are clonable and encodable, so
//!    the exhaustive explorer and the Theorem 1 census can snapshot whole
//!    system configurations.

use std::fmt;

use crate::memory::Memory;
use crate::word::{Pid, Word};

/// The result of one machine step.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Poll {
    /// The operation has more steps to run.
    Pending,
    /// The operation completed with this response word.
    ///
    /// For recovery machines the response may be [`crate::RESP_FAIL`],
    /// meaning the recovery function inferred that the crashed operation was
    /// *not* linearized.
    Ready(Word),
}

impl Poll {
    /// Whether this is `Ready`.
    pub fn is_ready(&self) -> bool {
        matches!(self, Poll::Ready(_))
    }
}

/// A recoverable operation (or recovery function) in flight.
///
/// A machine's fields model the process's *volatile local variables*: a
/// system-wide crash destroys them (the driver drops the machine). Anything
/// an algorithm needs across a crash must be written to NVM through the
/// [`Memory`] passed to [`step`](Machine::step).
///
/// Machines are `Send` so the multi-threaded benchmark harness can drive one
/// per thread over an [`crate::AtomicMemory`].
pub trait Machine: Send {
    /// Executes the next line of the algorithm: at most one primitive memory
    /// operation plus local computation.
    ///
    /// Calling `step` again after `Ready` is a bug; implementations may
    /// panic.
    fn step(&mut self, mem: &dyn Memory) -> Poll;

    /// The process executing this operation.
    fn pid(&self) -> Pid;

    /// A human-readable label of the *next* line to execute (paper line
    /// numbers where applicable), for traces and debugging.
    fn label(&self) -> &'static str;

    /// Clones the machine (volatile local state included) for state-space
    /// exploration.
    fn clone_box(&self) -> Box<dyn Machine>;

    /// Encodes the complete volatile state (control location + locals) as
    /// words, for configuration-census visited-set keys. Two machines with
    /// equal encodings must behave identically from here on.
    fn encode(&self) -> Vec<Word>;
}

impl Clone for Box<dyn Machine> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl fmt::Debug for dyn Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Machine({} at {})", self.pid(), self.label())
    }
}

/// Error returned by [`run_to_completion`] when the step budget is exhausted
/// — used to detect accidental non-termination (the paper's algorithms are
/// wait-free, so honest runs always finish).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct StepLimitError {
    /// The budget that was exhausted.
    pub limit: usize,
}

impl fmt::Display for StepLimitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "machine did not complete within {} steps", self.limit)
    }
}

impl std::error::Error for StepLimitError {}

/// Runs a machine solo until it completes, with a step budget.
///
/// # Errors
///
/// Returns [`StepLimitError`] if the machine is still pending after `limit`
/// steps.
///
/// # Example
///
/// ```
/// # use nvm::{run_to_completion, LayoutBuilder, Machine, Memory, Pid, Poll, SimMemory, Word};
/// # #[derive(Clone)]
/// # struct Nop(Pid);
/// # impl Machine for Nop {
/// #     fn step(&mut self, _m: &dyn Memory) -> Poll { Poll::Ready(7) }
/// #     fn pid(&self) -> Pid { self.0 }
/// #     fn label(&self) -> &'static str { "done" }
/// #     fn clone_box(&self) -> Box<dyn Machine> { Box::new(self.clone()) }
/// #     fn encode(&self) -> Vec<Word> { vec![] }
/// # }
/// let mut b = LayoutBuilder::new();
/// b.shared("pad", 1, 1);
/// let mem = SimMemory::new(b.finish());
/// let mut m = Nop(Pid::new(0));
/// assert_eq!(run_to_completion(&mut m, &mem, 10).unwrap(), 7);
/// ```
pub fn run_to_completion(
    m: &mut dyn Machine,
    mem: &dyn Memory,
    limit: usize,
) -> Result<Word, StepLimitError> {
    for _ in 0..limit {
        if let Poll::Ready(w) = m.step(mem) {
            return Ok(w);
        }
    }
    Err(StepLimitError { limit })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutBuilder;
    use crate::memory::SimMemory;

    /// A machine that increments a cell `k` times, one write per step.
    #[derive(Clone)]
    struct Incr {
        pid: Pid,
        loc: crate::Loc,
        left: u32,
    }

    impl Machine for Incr {
        fn step(&mut self, mem: &dyn Memory) -> Poll {
            if self.left == 0 {
                return Poll::Ready(0);
            }
            let v = mem.read(self.pid, self.loc);
            mem.write(self.pid, self.loc, v + 1);
            self.left -= 1;
            if self.left == 0 {
                Poll::Ready(1)
            } else {
                Poll::Pending
            }
        }
        fn pid(&self) -> Pid {
            self.pid
        }
        fn label(&self) -> &'static str {
            if self.left == 0 {
                "done"
            } else {
                "incr"
            }
        }
        fn clone_box(&self) -> Box<dyn Machine> {
            Box::new(self.clone())
        }
        fn encode(&self) -> Vec<Word> {
            vec![u64::from(self.left)]
        }
    }

    fn setup() -> (SimMemory, crate::Loc) {
        let mut b = LayoutBuilder::new();
        let x = b.shared("X", 1, 64);
        (SimMemory::new(b.finish()), x)
    }

    #[test]
    fn run_to_completion_finishes() {
        let (mem, x) = setup();
        let mut m = Incr {
            pid: Pid::new(0),
            loc: x,
            left: 3,
        };
        assert_eq!(run_to_completion(&mut m, &mem, 100).unwrap(), 1);
        assert_eq!(mem.peek(x), 3);
    }

    #[test]
    fn run_to_completion_respects_limit() {
        let (mem, x) = setup();
        let mut m = Incr {
            pid: Pid::new(0),
            loc: x,
            left: 50,
        };
        let err = run_to_completion(&mut m, &mem, 10).unwrap_err();
        assert_eq!(err.limit, 10);
        assert_eq!(err.to_string(), "machine did not complete within 10 steps");
    }

    #[test]
    fn cloned_machine_is_independent() {
        let (mem, x) = setup();
        let mut m = Incr {
            pid: Pid::new(0),
            loc: x,
            left: 2,
        };
        let _ = m.step(&mem);
        let mut copy = m.clone_box();
        assert_eq!(copy.encode(), m.encode());
        let _ = m.step(&mem); // finish original
        assert_ne!(copy.encode(), m.encode());
        let _ = copy.step(&mem);
        assert_eq!(mem.peek(x), 3); // both completed their remaining steps
    }

    #[test]
    fn dropping_a_machine_models_a_crash() {
        let (mem, x) = setup();
        let mut m = Incr {
            pid: Pid::new(0),
            loc: x,
            left: 5,
        };
        let _ = m.step(&mem);
        let _ = m.step(&mem);
        let _ = m; // crash: local state gone, NVM retains partial effects
        assert_eq!(mem.peek(x), 2);
    }

    #[test]
    fn poll_is_ready() {
        assert!(Poll::Ready(3).is_ready());
        assert!(!Poll::Pending.is_ready());
    }
}
