//! Machine words, process identifiers and bit-field packing.
//!
//! Every NVM cell holds one 64-bit [`Word`]. Object values in this
//! reproduction are at most 32 bits wide, so the top of the word range is
//! reserved for sentinels ([`RESP_NONE`], [`RESP_FAIL`]) that can never
//! collide with a real packed value.

use std::fmt;

/// The contents of one NVM cell.
pub type Word = u64;

/// The ⊥ (bottom) sentinel: "no response recorded yet" in `Ann_p.resp`.
pub const RESP_NONE: Word = u64::MAX;

/// The special `fail` value returned by a recovery function when it infers
/// that the crashed operation was **not** linearized (paper, Section 2).
pub const RESP_FAIL: Word = u64::MAX - 1;

/// The `ack` response of operations that return no value (e.g. `Write`).
pub const ACK: Word = 1;

/// Boolean `true` encoded as a response word.
pub const TRUE: Word = 1;

/// Boolean `false` encoded as a response word.
pub const FALSE: Word = 0;

/// A process identifier in `0..N`.
///
/// The paper considers `N` asynchronous crash-prone processes; a `Pid` names
/// one of them. Private NVM regions are owned by a single `Pid` and the
/// simulated memory asserts the ownership discipline.
///
/// # Example
///
/// ```
/// use nvm::Pid;
/// let p = Pid::new(3);
/// assert_eq!(p.idx(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Pid(u32);

impl Pid {
    /// Creates a process identifier.
    pub fn new(id: u32) -> Self {
        Pid(id)
    }

    /// Returns the identifier as an array index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw identifier.
    pub fn get(self) -> u32 {
        self.0
    }

    /// Iterates over all process identifiers `0..n`.
    pub fn all(n: u32) -> impl Iterator<Item = Pid> {
        (0..n).map(Pid)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<Pid> for usize {
    fn from(p: Pid) -> usize {
        p.idx()
    }
}

/// A contiguous bit-field inside a [`Word`].
///
/// Algorithms in the paper pack several logical values into a single atomic
/// register (e.g. Algorithm 1's `R = ⟨val, q, toggle⟩` and Algorithm 2's
/// `C = ⟨val, vec⟩`). `Field` provides checked get/set access to such
/// packings.
///
/// # Example
///
/// ```
/// use nvm::{Field, FieldBuilder};
/// let mut b = FieldBuilder::new();
/// let val: Field = b.field(32);
/// let pid: Field = b.field(6);
/// let toggle: Field = b.field(1);
///
/// let mut w = 0u64;
/// w = val.set(w, 0xDEAD_BEEF);
/// w = pid.set(w, 17);
/// w = toggle.set(w, 1);
/// assert_eq!(val.get(w), 0xDEAD_BEEF);
/// assert_eq!(pid.get(w), 17);
/// assert_eq!(toggle.get(w), 1);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Field {
    shift: u32,
    width: u32,
}

impl Field {
    /// Creates a field occupying `width` bits starting at bit `shift`.
    ///
    /// # Panics
    ///
    /// Panics if the field does not fit in 64 bits or has zero width.
    pub fn new(shift: u32, width: u32) -> Self {
        assert!(width > 0, "zero-width field");
        assert!(shift + width <= 64, "field exceeds word width");
        Field { shift, width }
    }

    /// The bit position of the field's least significant bit.
    pub fn shift(self) -> u32 {
        self.shift
    }

    /// The field width in bits.
    pub fn width(self) -> u32 {
        self.width
    }

    /// The maximum value representable by this field.
    pub fn max(self) -> Word {
        if self.width == 64 {
            Word::MAX
        } else {
            (1 << self.width) - 1
        }
    }

    /// Extracts the field's value from `w`.
    pub fn get(self, w: Word) -> Word {
        (w >> self.shift) & self.max()
    }

    /// Returns `w` with the field replaced by `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not fit in the field.
    pub fn set(self, w: Word, v: Word) -> Word {
        assert!(
            v <= self.max(),
            "value {v} exceeds field width {}",
            self.width
        );
        (w & !(self.max() << self.shift)) | (v << self.shift)
    }
}

/// Allocates consecutive [`Field`]s from the least significant bit of a word.
///
/// See [`Field`] for an example.
#[derive(Clone, Debug, Default)]
pub struct FieldBuilder {
    used: u32,
}

impl FieldBuilder {
    /// Creates a builder with no bits allocated.
    pub fn new() -> Self {
        FieldBuilder { used: 0 }
    }

    /// Allocates the next `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if the word is exhausted.
    pub fn field(&mut self, width: u32) -> Field {
        let f = Field::new(self.used, width);
        self.used += width;
        f
    }

    /// Total bits allocated so far.
    pub fn bits_used(&self) -> u32 {
        self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_roundtrip() {
        let p = Pid::new(7);
        assert_eq!(p.idx(), 7);
        assert_eq!(p.get(), 7);
        assert_eq!(usize::from(p), 7);
    }

    #[test]
    fn pid_all_enumerates() {
        let v: Vec<Pid> = Pid::all(3).collect();
        assert_eq!(v, vec![Pid::new(0), Pid::new(1), Pid::new(2)]);
    }

    #[test]
    fn pid_display() {
        assert_eq!(Pid::new(12).to_string(), "p12");
    }

    #[test]
    fn sentinels_are_distinct_and_above_values() {
        assert_ne!(RESP_NONE, RESP_FAIL);
        assert!(RESP_FAIL > u64::from(u32::MAX));
        assert!(RESP_NONE > u64::from(u32::MAX));
    }

    #[test]
    fn field_get_set_roundtrip() {
        let f = Field::new(5, 11);
        let w = f.set(0, 0x3FF);
        assert_eq!(f.get(w), 0x3FF);
        // Neighbouring bits untouched.
        assert_eq!(w & 0b11111, 0);
    }

    #[test]
    fn field_set_preserves_other_fields() {
        let mut b = FieldBuilder::new();
        let a = b.field(8);
        let c = b.field(8);
        let w = c.set(a.set(0, 0xAB), 0xCD);
        assert_eq!(a.get(w), 0xAB);
        assert_eq!(c.get(w), 0xCD);
        let w2 = a.set(w, 0x01);
        assert_eq!(c.get(w2), 0xCD);
    }

    #[test]
    fn field_full_width() {
        let f = Field::new(0, 64);
        assert_eq!(f.max(), Word::MAX);
        assert_eq!(f.get(f.set(0, Word::MAX)), Word::MAX);
    }

    #[test]
    #[should_panic(expected = "exceeds field width")]
    fn field_overflow_panics() {
        let f = Field::new(0, 4);
        let _ = f.set(0, 16);
    }

    #[test]
    #[should_panic(expected = "field exceeds word width")]
    fn field_too_wide_panics() {
        let _ = Field::new(60, 5);
    }

    #[test]
    fn builder_allocates_consecutively() {
        let mut b = FieldBuilder::new();
        let x = b.field(3);
        let y = b.field(7);
        assert_eq!(x.shift(), 0);
        assert_eq!(y.shift(), 3);
        assert_eq!(b.bits_used(), 10);
    }
}
