//! The per-process announcement structure `Ann_p` (paper Section 2).
//!
//! Each process `p` owns a private non-volatile structure with three fields:
//!
//! * `Ann_p.op` — which recoverable operation `p` is performing, with its
//!   arguments. In this reproduction the *driver* (the harness acting as the
//!   system/caller) retains this information, exactly as the model allows:
//!   "it is accessed only by the caller of the recoverable operation".
//! * `Ann_p.resp` — the operation's persisted response, initialized to ⊥
//!   ([`RESP_NONE`]) by the caller immediately before invocation.
//! * `Ann_p.CP` — the checkpoint counter, set to 0 by the caller immediately
//!   before invocation; read and written by operations and recovery
//!   functions.
//!
//! The caller-side resets performed by [`AnnBank::prepare`] are precisely the
//! **auxiliary state** of Theorem 2: NVM writes made between successive
//! invocations by someone other than the operation itself. The adversarial
//! baseline used by the Theorem 2 experiment is the same algorithm run
//! *without* these resets.

use crate::layout::{LayoutBuilder, Loc};
use crate::memory::Memory;
use crate::word::{Pid, Word, RESP_NONE};

/// The `resp` and `CP` fields of `Ann_p` for all `N` processes of one object.
#[derive(Clone, Debug)]
pub struct AnnBank {
    resp: Loc,
    cp: Loc,
    n: u32,
}

impl AnnBank {
    /// Allocates `resp` and `CP` cells for `n` processes.
    ///
    /// `resp` cells are full words (they hold response values or ⊥); `CP`
    /// cells are counted at `cp_bits` logical bits (the paper's algorithms
    /// need only values {0, 1, 2}, i.e. 2 bits).
    pub fn alloc(b: &mut LayoutBuilder, name: &str, n: u32, cp_bits: u32) -> Self {
        let resp = b.private_array(&format!("{name}.Ann.resp"), n, 1, 64);
        let cp = b.private_array(&format!("{name}.Ann.CP"), n, 1, cp_bits);
        AnnBank { resp, cp, n }
    }

    /// Number of processes this bank serves.
    pub fn processes(&self) -> u32 {
        self.n
    }

    /// Location of `Ann_p.resp`.
    pub fn resp_loc(&self, pid: Pid) -> Loc {
        debug_assert!((pid.idx() as u32) < self.n);
        self.resp.at(pid.idx())
    }

    /// Location of `Ann_p.CP`.
    pub fn cp_loc(&self, pid: Pid) -> Loc {
        debug_assert!((pid.idx() as u32) < self.n);
        self.cp.at(pid.idx())
    }

    /// The caller protocol from Section 2, executed immediately before
    /// invoking a recoverable operation: `resp := ⊥; CP := 0`, persisted.
    ///
    /// This is the externally provided auxiliary state of Theorem 2.
    pub fn prepare(&self, mem: &dyn Memory, pid: Pid) {
        mem.write(pid, self.resp_loc(pid), RESP_NONE);
        mem.persist(pid, self.resp_loc(pid));
        mem.write(pid, self.cp_loc(pid), 0);
        mem.persist(pid, self.cp_loc(pid));
    }

    /// Reads `Ann_p.resp`.
    pub fn read_resp(&self, mem: &dyn Memory, pid: Pid) -> Word {
        mem.read(pid, self.resp_loc(pid))
    }

    /// Writes and persists `Ann_p.resp`.
    pub fn write_resp(&self, mem: &dyn Memory, pid: Pid, w: Word) {
        mem.write(pid, self.resp_loc(pid), w);
        mem.persist(pid, self.resp_loc(pid));
    }

    /// Reads `Ann_p.CP`.
    pub fn read_cp(&self, mem: &dyn Memory, pid: Pid) -> Word {
        mem.read(pid, self.cp_loc(pid))
    }

    /// Writes and persists `Ann_p.CP`.
    pub fn write_cp(&self, mem: &dyn Memory, pid: Pid, w: Word) {
        mem.write(pid, self.cp_loc(pid), w);
        mem.persist(pid, self.cp_loc(pid));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{CacheMode, CrashPolicy, SimMemory};

    fn setup() -> (SimMemory, AnnBank) {
        let mut b = LayoutBuilder::new();
        let ann = AnnBank::alloc(&mut b, "O", 3, 2);
        (SimMemory::new(b.finish()), ann)
    }

    #[test]
    fn prepare_resets_fields() {
        let (mem, ann) = setup();
        let p = Pid::new(1);
        ann.write_resp(&mem, p, 7);
        ann.write_cp(&mem, p, 2);
        ann.prepare(&mem, p);
        assert_eq!(ann.read_resp(&mem, p), RESP_NONE);
        assert_eq!(ann.read_cp(&mem, p), 0);
    }

    #[test]
    fn cells_are_per_process() {
        let (mem, ann) = setup();
        ann.write_cp(&mem, Pid::new(0), 1);
        ann.write_cp(&mem, Pid::new(2), 2);
        assert_eq!(ann.read_cp(&mem, Pid::new(0)), 1);
        assert_eq!(ann.read_cp(&mem, Pid::new(2)), 2);
    }

    #[test]
    fn ann_cells_are_private() {
        let (mem, ann) = setup();
        assert_eq!(
            mem.layout().owner_of(ann.resp_loc(Pid::new(2))),
            Some(Pid::new(2))
        );
        assert_eq!(
            mem.layout().owner_of(ann.cp_loc(Pid::new(0))),
            Some(Pid::new(0))
        );
    }

    #[test]
    fn writes_are_persisted_in_shared_cache_mode() {
        let mut b = LayoutBuilder::new();
        let ann = AnnBank::alloc(&mut b, "O", 1, 2);
        let mem = SimMemory::with_mode(b.finish(), CacheMode::SharedCache);
        let p = Pid::new(0);
        ann.prepare(&mem, p);
        ann.write_resp(&mem, p, 5);
        ann.write_cp(&mem, p, 1);
        mem.crash(CrashPolicy::DropAll);
        assert_eq!(ann.read_resp(&mem, p), 5);
        assert_eq!(ann.read_cp(&mem, p), 1);
    }

    #[test]
    fn initial_resp_is_zero_until_prepared() {
        // Fresh memory is all-zeros; the caller protocol must run before the
        // first invocation, establishing the ⊥ sentinel.
        let (mem, ann) = setup();
        let p = Pid::new(0);
        assert_eq!(ann.read_resp(&mem, p), 0);
        ann.prepare(&mem, p);
        assert_eq!(ann.read_resp(&mem, p), RESP_NONE);
    }
}
