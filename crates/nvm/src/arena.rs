//! Append-only, deduplicating word-image arena for state-space searches.
//!
//! Breadth-first searches revisit states in arbitrary order, so every
//! frontier node must *carry* the memory it will resume from. Storing a
//! [`MemSnapshot`](crate::MemSnapshot) per node costs a `Vec` plus a
//! `BTreeMap` allocation each, and moving nodes between worker threads
//! moves those heaps with them. For crash-free searches the logical word
//! image alone determines all future behavior, and the same image recurs
//! across many nodes (the same memory with different in-flight machines),
//! so the Theorem 1 census stores each **distinct** image once in a shared
//! [`StateArena`] and hands nodes around as 8-byte [`CompactState`]
//! handles: peak memory drops from O(nodes × memory) to
//! O(nodes + distinct images × memory), and node hand-off between workers
//! is a copy of one word.
//!
//! The arena is sharded (64 ways, like the census visited set): interning
//! hashes the image, locks one shard, compares against the images already
//! stored under that hash (dedup is **exact** — hashes only route), and
//! appends to the shard's flat word store only when the image is novel.
//! Entries are never moved or freed, so a handle stays valid for the
//! arena's lifetime and reads only lock the one shard they touch.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::word::Word;

const SHARDS: usize = 64;

/// A handle to one interned word image: shard and slot, packed so frontier
/// nodes carry 8 bytes instead of an owned memory copy. Equal images intern
/// to equal handles (within one arena), so handles double as exact image
/// identity.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct CompactState {
    shard: u32,
    slot: u32,
}

#[derive(Default)]
struct Shard {
    /// Image hash → slots whose stored image carries that hash (exact
    /// comparison resolves collisions).
    index: HashMap<u64, Vec<u32>>,
    /// Slot `s` occupies `words[s * stride .. (s + 1) * stride]`.
    words: Vec<Word>,
}

/// A sharded, append-only store of fixed-width word images with exact
/// deduplication. See the [module docs](self).
pub struct StateArena {
    stride: usize,
    shards: Vec<Mutex<Shard>>,
    distinct: AtomicUsize,
}

impl StateArena {
    /// An empty arena for images of exactly `stride` words (a search over
    /// one layout interns `Layout::total_words`-sized images).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero — a zero-width image cannot address
    /// anything.
    pub fn new(stride: usize) -> Self {
        assert!(stride > 0, "arena stride must be positive");
        StateArena {
            stride,
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            distinct: AtomicUsize::new(0),
        }
    }

    /// Words per interned image.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of distinct images stored.
    pub fn distinct(&self) -> usize {
        self.distinct.load(Ordering::Relaxed)
    }

    /// Total words held across all shards (`distinct() * stride()`) — the
    /// arena's storage footprint, for callers accounting memory.
    pub fn stored_words(&self) -> usize {
        self.distinct() * self.stride
    }

    /// A suitable [`intern`](Self::intern) hash for callers that have not
    /// already hashed the image for their own bookkeeping.
    pub fn hash_image(image: &[Word]) -> u64 {
        let mut h = DefaultHasher::new();
        image.hash(&mut h);
        h.finish()
    }

    /// Interns `image`, returning its handle: the existing slot if an equal
    /// image was interned before (by any thread), a freshly appended slot
    /// otherwise.
    ///
    /// `hash` routes the image to a shard and keys the dedup index, so it
    /// **must be a pure function of the image contents** (the same image
    /// must always arrive with the same hash, or dedup silently degrades
    /// to duplicate storage — identity stays exact either way, membership
    /// is decided by comparison). Callers that already hash the image for
    /// their own bookkeeping (the census fingerprints successors anyway)
    /// pass that hash instead of paying a second full-image pass;
    /// [`hash_image`](Self::hash_image) serves everyone else.
    ///
    /// # Panics
    ///
    /// Panics if `image.len()` differs from the arena stride.
    pub fn intern(&self, image: &[Word], hash: u64) -> CompactState {
        assert_eq!(image.len(), self.stride, "image width != arena stride");
        let shard_idx = (hash as usize) % SHARDS;
        let mut shard = self.shards[shard_idx].lock().expect("arena shard poisoned");
        self.intern_locked(shard_idx, &mut shard, image, hash)
    }

    /// Interns every image staged in `stage`, writing one handle per
    /// staged image (in staging order) into `out`, and drains the stage
    /// for reuse.
    ///
    /// Semantically identical to calling [`intern`](Self::intern) once per
    /// staged image in order — same exact-dedup contract, same handles —
    /// but the staged images are grouped by destination shard first, so
    /// each distinct shard is locked **once per flush** instead of once
    /// per successor. Worker threads of a parallel search stage a whole
    /// expansion's admitted successors locally and flush in one call,
    /// cutting the shard-lock round-trips and the cache-line traffic they
    /// cause. Duplicates *within* one batch dedup like any others: the
    /// first staged copy appends, later copies hit the shard index it
    /// just extended.
    ///
    /// # Panics
    ///
    /// Panics if the stage's stride differs from the arena's.
    pub fn intern_batch(&self, stage: &mut InternStage, out: &mut Vec<CompactState>) {
        assert_eq!(stage.stride, self.stride, "stage width != arena stride");
        let n = stage.hashes.len();
        out.clear();
        out.resize(n, CompactState { shard: 0, slot: 0 });
        // Sort (shard, staging-index) pairs: groups by shard while keeping
        // staging order within each shard, so slot assignment matches the
        // one-call-per-image order exactly.
        let mut order: Vec<(usize, usize)> = stage
            .hashes
            .iter()
            .enumerate()
            .map(|(i, &h)| ((h as usize) % SHARDS, i))
            .collect();
        order.sort_unstable();
        let mut at = 0;
        while at < order.len() {
            let shard_idx = order[at].0;
            let mut shard = self.shards[shard_idx].lock().expect("arena shard poisoned");
            while at < order.len() && order[at].0 == shard_idx {
                let i = order[at].1;
                let image = &stage.words[i * self.stride..(i + 1) * self.stride];
                out[i] = self.intern_locked(shard_idx, &mut shard, image, stage.hashes[i]);
                at += 1;
            }
        }
        stage.clear();
    }

    /// The single-image intern body, run under `shard`'s lock.
    fn intern_locked(
        &self,
        shard_idx: usize,
        shard: &mut Shard,
        image: &[Word],
        hash: u64,
    ) -> CompactState {
        let Shard { index, words } = shard;
        let slots = index.entry(hash).or_default();
        // Hash routing only: membership is decided by exact comparison.
        for &slot in slots.iter() {
            let at = slot as usize * self.stride;
            if &words[at..at + self.stride] == image {
                return CompactState {
                    shard: shard_idx as u32,
                    slot,
                };
            }
        }
        let slot = (words.len() / self.stride) as u32;
        slots.push(slot);
        words.extend_from_slice(image);
        self.distinct.fetch_add(1, Ordering::Relaxed);
        CompactState {
            shard: shard_idx as u32,
            slot,
        }
    }

    /// Copies the image behind `handle` into `out` (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if `handle` did not come from this arena (shard or slot out
    /// of range).
    pub fn read_into(&self, handle: CompactState, out: &mut Vec<Word>) {
        let shard = self.shards[handle.shard as usize]
            .lock()
            .expect("arena shard poisoned");
        let at = handle.slot as usize * self.stride;
        assert!(
            at + self.stride <= shard.words.len(),
            "arena handle out of range"
        );
        out.clear();
        out.extend_from_slice(&shard.words[at..at + self.stride]);
    }
}

/// A worker-local staging buffer for [`StateArena::intern_batch`]: images
/// (stored flat) plus their routing hashes, accumulated lock-free and
/// flushed to the sharded arena in one call. Reusable across flushes — the
/// flush drains it — so a long-running worker allocates once.
pub struct InternStage {
    stride: usize,
    words: Vec<Word>,
    hashes: Vec<u64>,
}

impl InternStage {
    /// An empty stage for images of exactly `stride` words (must match the
    /// arena it will flush into).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn new(stride: usize) -> Self {
        assert!(stride > 0, "stage stride must be positive");
        InternStage {
            stride,
            words: Vec::new(),
            hashes: Vec::new(),
        }
    }

    /// Stages one image under its routing `hash` (same purity contract as
    /// [`StateArena::intern`]), returning its staging index — the position
    /// of its handle in the flush's output.
    ///
    /// # Panics
    ///
    /// Panics if `image.len()` differs from the stage stride.
    pub fn push(&mut self, image: &[Word], hash: u64) -> usize {
        assert_eq!(image.len(), self.stride, "image width != stage stride");
        self.words.extend_from_slice(image);
        self.hashes.push(hash);
        self.hashes.len() - 1
    }

    /// Number of images currently staged.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Whether the stage is empty (a flush of an empty stage is a no-op).
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Drops every staged image (flushing does this automatically).
    pub fn clear(&mut self) {
        self.words.clear();
        self.hashes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn intern(arena: &StateArena, image: &[Word]) -> CompactState {
        arena.intern(image, StateArena::hash_image(image))
    }

    #[test]
    fn intern_dedups_and_reads_back() {
        let arena = StateArena::new(3);
        let a = intern(&arena, &[1, 2, 3]);
        let b = intern(&arena, &[4, 5, 6]);
        let a2 = intern(&arena, &[1, 2, 3]);
        assert_eq!(a, a2, "equal images share a slot");
        assert_ne!(a, b);
        assert_eq!(arena.distinct(), 2);
        assert_eq!(arena.stored_words(), 6);
        let mut out = Vec::new();
        arena.read_into(a, &mut out);
        assert_eq!(out, vec![1, 2, 3]);
        arena.read_into(b, &mut out);
        assert_eq!(out, vec![4, 5, 6]);
    }

    #[test]
    fn concurrent_interning_agrees_on_identity() {
        let arena = StateArena::new(2);
        let handles: Vec<Vec<CompactState>> = std::thread::scope(|s| {
            (0..4)
                .map(|_| s.spawn(|| (0..100u64).map(|i| intern(&arena, &[i % 10, 7])).collect()))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("intern worker panicked"))
                .collect()
        });
        assert_eq!(arena.distinct(), 10, "10 distinct images across threads");
        for other in &handles[1..] {
            assert_eq!(&handles[0], other, "every thread saw the same handles");
        }
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn wrong_width_is_rejected() {
        intern(&StateArena::new(2), &[1]);
    }

    #[test]
    fn batch_interning_matches_per_image_interning() {
        // The batch path must hand out exactly the handles the one-call
        // path would: same dedup, same slots, staging order preserved.
        let reference = StateArena::new(2);
        let batched = StateArena::new(2);
        let images: Vec<[Word; 2]> = (0..200u64).map(|i| [i % 13, i % 7]).collect();
        let one_by_one: Vec<CompactState> =
            images.iter().map(|im| intern(&reference, im)).collect();

        let mut stage = InternStage::new(2);
        let mut out = Vec::new();
        let mut via_batch = Vec::new();
        for chunk in images.chunks(9) {
            for im in chunk {
                stage.push(im, StateArena::hash_image(im));
            }
            batched.intern_batch(&mut stage, &mut out);
            assert!(stage.is_empty(), "flush drains the stage");
            via_batch.extend(out.iter().copied());
        }
        assert_eq!(via_batch, one_by_one);
        assert_eq!(batched.distinct(), reference.distinct());
    }

    #[test]
    fn duplicates_within_one_batch_share_a_handle() {
        let arena = StateArena::new(2);
        let mut stage = InternStage::new(2);
        stage.push(&[1, 2], StateArena::hash_image(&[1, 2]));
        stage.push(&[3, 4], StateArena::hash_image(&[3, 4]));
        stage.push(&[1, 2], StateArena::hash_image(&[1, 2]));
        let mut out = Vec::new();
        arena.intern_batch(&mut stage, &mut out);
        assert_eq!(out[0], out[2], "in-batch duplicate dedups");
        assert_ne!(out[0], out[1]);
        assert_eq!(arena.distinct(), 2);
    }
}
