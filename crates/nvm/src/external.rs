//! Disk-spillable word-image arena for external-memory state-space searches.
//!
//! [`StateArena`](crate::StateArena) keeps every interned image resident,
//! so the census's peak RAM grows with the number of *distinct* memory
//! images — fine through N = 6, fatal at N = 7. [`SpillableArena`] keeps
//! the same append-only, handle-stable contract but partitions storage
//! into fixed-size **segments**: one active segment accepts appends in
//! RAM, and every filled segment is *sealed* — written to a file under a
//! caller-supplied directory and dropped from RAM (or, with no directory,
//! parked in RAM so the type still works without a disk tier). Reads of
//! sealed segments go through a small hot-segment cache; a miss reads the
//! whole segment back from its file. Only the active segment, the cache,
//! and the dedup index stay resident, so the arena's RAM footprint is
//! bounded by configuration, not by N.
//!
//! # Identity is probabilistic, not exact
//!
//! [`StateArena`] resolves hash collisions by exact image comparison;
//! doing that here would mean a disk read per intern. Instead the dedup
//! index keys on a caller-supplied **128-bit** hash and trusts it: two
//! distinct images with equal 128-bit hashes would alias. This is the
//! same trade the census already makes for its visited-set fingerprints
//! (see `fingerprint_image` in the harness), so the external engine adds
//! no *new* class of error by using it — and the differential tests pin
//! it against the exact in-RAM engine on every count.

use std::collections::{HashMap, VecDeque};
use std::fs::{self, File};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Mutex;

use crate::word::Word;

/// Sizing knobs for a [`SpillableArena`]. Callers derive these from a RAM
/// budget; the defaults suit tests and small worlds.
#[derive(Clone, Debug)]
pub struct SpillConfig {
    /// Images per segment. The active segment and each cached segment
    /// cost `seg_slots * stride * 8` bytes of RAM.
    pub seg_slots: usize,
    /// Sealed segments kept hot in RAM for re-reads (LRU-evicted).
    pub hot_segments: usize,
    /// Where sealed segments are written. `None` parks sealed segments
    /// in RAM instead (no disk tier, identical semantics).
    pub disk_dir: Option<PathBuf>,
}

impl Default for SpillConfig {
    fn default() -> Self {
        SpillConfig {
            seg_slots: 4096,
            hot_segments: 2,
            disk_dir: None,
        }
    }
}

/// Counters describing how much of a [`SpillableArena`]'s traffic hit the
/// disk tier.
#[derive(Copy, Clone, Default, Debug)]
pub struct SpillArenaStats {
    /// Segments filled and sealed (RAM- or disk-parked).
    pub segments_sealed: usize,
    /// Sealed segments written to files.
    pub segments_spilled: usize,
    /// Whole-segment reads back from files (hot-cache misses).
    pub segment_reads: usize,
    /// Sealed-segment reads served from the hot cache.
    pub cache_hits: usize,
}

enum Sealed {
    Ram(Box<[Word]>),
    Disk { file: File, path: PathBuf },
}

struct Inner {
    /// 128-bit image hash → handle. Stays resident; this is the one
    /// structure whose size still grows with distinct images (24 bytes
    /// per image instead of a full image).
    index: HashMap<(u64, u64), u64>,
    active: Vec<Word>,
    sealed: Vec<Sealed>,
    cache: HashMap<usize, Box<[Word]>>,
    cache_order: VecDeque<usize>,
    stats: SpillArenaStats,
    peak_resident: usize,
}

/// A segmented, disk-spillable, append-only store of fixed-width word
/// images deduplicated by 128-bit hash. See the [module docs](self).
pub struct SpillableArena {
    stride: usize,
    cfg: SpillConfig,
    inner: Mutex<Inner>,
}

impl SpillableArena {
    /// An empty arena for images of exactly `stride` words.
    ///
    /// # Panics
    ///
    /// Panics if `stride` or `cfg.seg_slots` is zero.
    pub fn new(stride: usize, cfg: SpillConfig) -> Self {
        assert!(stride > 0, "arena stride must be positive");
        assert!(cfg.seg_slots > 0, "segments must hold at least one image");
        SpillableArena {
            stride,
            cfg,
            inner: Mutex::new(Inner {
                index: HashMap::new(),
                active: Vec::new(),
                sealed: Vec::new(),
                cache: HashMap::new(),
                cache_order: VecDeque::new(),
                stats: SpillArenaStats::default(),
                peak_resident: 0,
            }),
        }
    }

    /// Words per interned image.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of distinct images stored (by 128-bit hash identity).
    pub fn distinct(&self) -> usize {
        self.lock().index.len()
    }

    /// Disk-tier counters so far.
    pub fn spill_stats(&self) -> SpillArenaStats {
        self.lock().stats
    }

    /// High-water mark of the arena's *resident* footprint in bytes:
    /// dedup index plus active segment plus RAM-parked sealed segments
    /// plus hot cache. An estimate (hash-map overhead is approximated),
    /// maintained so callers can check a RAM budget rather than assert it.
    pub fn peak_resident_bytes(&self) -> usize {
        self.lock().peak_resident
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("spillable arena poisoned")
    }

    fn resident_estimate(&self, inner: &Inner) -> usize {
        // Index: 16-byte key + 8-byte value + ~8 bytes of table overhead
        // per capacity slot. Word storage: exact.
        let index = inner.index.capacity() * 32;
        let active = inner.active.capacity() * 8;
        let parked: usize = inner
            .sealed
            .iter()
            .map(|s| match s {
                Sealed::Ram(w) => w.len() * 8,
                Sealed::Disk { .. } => 0,
            })
            .sum();
        let cache: usize = inner.cache.values().map(|w| w.len() * 8).sum();
        index + active + parked + cache
    }

    fn note_resident(&self, inner: &mut Inner) {
        let now = self.resident_estimate(inner);
        if now > inner.peak_resident {
            inner.peak_resident = now;
        }
    }

    /// Interns `image` under its 128-bit `hash`, returning a dense `u64`
    /// handle (equal hashes intern to equal handles). The hash **must be
    /// a pure function of the image contents**; distinct images with
    /// colliding hashes alias (see the module docs for why that trade is
    /// acceptable here).
    ///
    /// # Panics
    ///
    /// Panics if `image.len()` differs from the arena stride, or if
    /// sealing a segment to disk fails.
    pub fn intern128(&self, image: &[Word], hash: (u64, u64)) -> u64 {
        assert_eq!(image.len(), self.stride, "image width != arena stride");
        let mut inner = self.lock();
        self.intern128_locked(&mut inner, image, hash)
    }

    /// Interns a batch of staged images in one lock acquisition: `images`
    /// holds `hashes.len()` stride-sized images back to back, and `out`
    /// receives one handle per image in order. Semantically identical to
    /// calling [`intern128`](Self::intern128) per image — same dedup, same
    /// handles — but the arena mutex is taken once per flush instead of
    /// once per successor, which is the census expansion hot path.
    ///
    /// # Panics
    ///
    /// Panics if `images.len() != hashes.len() * stride`, or if sealing a
    /// segment to disk fails.
    pub fn intern128_batch(&self, images: &[Word], hashes: &[(u64, u64)], out: &mut Vec<u64>) {
        assert_eq!(
            images.len(),
            hashes.len() * self.stride,
            "batch width != images × arena stride"
        );
        out.clear();
        let mut inner = self.lock();
        for (i, &hash) in hashes.iter().enumerate() {
            let image = &images[i * self.stride..(i + 1) * self.stride];
            out.push(self.intern128_locked(&mut inner, image, hash));
        }
    }

    /// The single-image intern body, run under the arena lock.
    fn intern128_locked(&self, inner: &mut Inner, image: &[Word], hash: (u64, u64)) -> u64 {
        if let Some(&handle) = inner.index.get(&hash) {
            return handle;
        }
        let seg = inner.sealed.len();
        let slot = inner.active.len() / self.stride;
        let handle = (seg * self.cfg.seg_slots + slot) as u64;
        inner.active.extend_from_slice(image);
        inner.index.insert(hash, handle);
        if slot + 1 == self.cfg.seg_slots {
            self.seal(inner);
        }
        self.note_resident(inner);
        handle
    }

    /// Seals the (full) active segment: spills it to `disk_dir/arena-seg-N.bin`
    /// when a disk directory is configured, parks it in RAM otherwise.
    fn seal(&self, inner: &mut Inner) {
        let words = std::mem::take(&mut inner.active);
        let seg = inner.sealed.len();
        inner.stats.segments_sealed += 1;
        let sealed = match &self.cfg.disk_dir {
            Some(dir) => {
                let path = dir.join(format!("arena-seg-{seg}.bin"));
                let mut file = File::create(&path)
                    .unwrap_or_else(|e| panic!("create arena segment {}: {e}", path.display()));
                let mut buf = Vec::with_capacity(words.len() * 8);
                for w in &words {
                    buf.extend_from_slice(&w.to_le_bytes());
                }
                file.write_all(&buf)
                    .unwrap_or_else(|e| panic!("write arena segment {}: {e}", path.display()));
                inner.stats.segments_spilled += 1;
                // Reopen read-only so later reads cannot write back.
                let file = File::open(&path)
                    .unwrap_or_else(|e| panic!("reopen arena segment {}: {e}", path.display()));
                Sealed::Disk { file, path }
            }
            None => Sealed::Ram(words.clone().into_boxed_slice()),
        };
        inner.sealed.push(sealed);
        inner.active = Vec::with_capacity(self.cfg.seg_slots * self.stride);
    }

    /// Copies the image behind `handle` into `out` (cleared first). A read
    /// of a spilled segment loads the whole segment into the hot cache,
    /// evicting the least-recently-loaded entry beyond `hot_segments`.
    ///
    /// # Panics
    ///
    /// Panics if `handle` did not come from this arena, or if a segment
    /// file cannot be read back.
    pub fn read_into(&self, handle: u64, out: &mut Vec<Word>) {
        let seg = handle as usize / self.cfg.seg_slots;
        let slot = handle as usize % self.cfg.seg_slots;
        let at = slot * self.stride;
        let mut inner = self.lock();
        out.clear();
        if seg == inner.sealed.len() {
            assert!(
                at + self.stride <= inner.active.len(),
                "handle out of range"
            );
            out.extend_from_slice(&inner.active[at..at + self.stride]);
            return;
        }
        assert!(seg < inner.sealed.len(), "handle out of range");
        if let Sealed::Ram(words) = &inner.sealed[seg] {
            out.extend_from_slice(&words[at..at + self.stride]);
            return;
        }
        if let Some(words) = inner.cache.get(&seg) {
            out.extend_from_slice(&words[at..at + self.stride]);
            inner.stats.cache_hits += 1;
            return;
        }
        let words = self.load_segment(&mut inner, seg);
        out.extend_from_slice(&words[at..at + self.stride]);
        let evict = if inner.cache.len() >= self.cfg.hot_segments.max(1) {
            inner.cache_order.pop_front()
        } else {
            None
        };
        if let Some(old) = evict {
            inner.cache.remove(&old);
        }
        inner.cache.insert(seg, words);
        inner.cache_order.push_back(seg);
        inner.stats.segment_reads += 1;
        self.note_resident(&mut inner);
    }

    fn load_segment(&self, inner: &mut Inner, seg: usize) -> Box<[Word]> {
        let Sealed::Disk { file, path } = &mut inner.sealed[seg] else {
            unreachable!("load_segment called on RAM segment");
        };
        let bytes = self.cfg.seg_slots * self.stride * 8;
        let mut buf = vec![0u8; bytes];
        file.seek(SeekFrom::Start(0))
            .and_then(|_| file.read_exact(&mut buf))
            .unwrap_or_else(|e| panic!("read arena segment {}: {e}", path.display()));
        buf.chunks_exact(8)
            .map(|c| Word::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect()
    }
}

impl Drop for SpillableArena {
    /// Best-effort removal of this arena's segment files, so a run that
    /// completes leaves its disk directory empty.
    fn drop(&mut self) {
        let inner = self.inner.get_mut().expect("spillable arena poisoned");
        for s in &inner.sealed {
            if let Sealed::Disk { path, .. } = s {
                let _ = fs::remove_file(path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn hash(image: &[Word]) -> (u64, u64) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut a = DefaultHasher::new();
        0u64.hash(&mut a);
        image.hash(&mut a);
        let mut b = DefaultHasher::new();
        1u64.hash(&mut b);
        image.hash(&mut b);
        (a.finish(), b.finish())
    }

    fn unique_dir() -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "nvm-spill-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    #[test]
    fn intern_dedups_and_reads_back_across_segments() {
        let arena = SpillableArena::new(
            3,
            SpillConfig {
                seg_slots: 2,
                hot_segments: 1,
                disk_dir: None,
            },
        );
        let images: Vec<Vec<Word>> = (0..7u64).map(|i| vec![i, i + 1, i + 2]).collect();
        let handles: Vec<u64> = images
            .iter()
            .map(|im| arena.intern128(im, hash(im)))
            .collect();
        for (im, &h) in images.iter().zip(&handles) {
            assert_eq!(arena.intern128(im, hash(im)), h, "re-intern is stable");
        }
        assert_eq!(arena.distinct(), 7);
        assert_eq!(arena.spill_stats().segments_sealed, 3);
        assert_eq!(arena.spill_stats().segments_spilled, 0, "no disk dir");
        let mut out = Vec::new();
        for (im, &h) in images.iter().zip(&handles) {
            arena.read_into(h, &mut out);
            assert_eq!(&out, im);
        }
    }

    #[test]
    fn disk_spill_round_trips_and_cleans_up() {
        let dir = unique_dir();
        let handles: Vec<u64>;
        let images: Vec<Vec<Word>> = (0..9u64).map(|i| vec![i * 10, i * 10 + 1]).collect();
        {
            let arena = SpillableArena::new(
                2,
                SpillConfig {
                    seg_slots: 2,
                    hot_segments: 1,
                    disk_dir: Some(dir.clone()),
                },
            );
            handles = images
                .iter()
                .map(|im| arena.intern128(im, hash(im)))
                .collect();
            let stats = arena.spill_stats();
            assert!(stats.segments_spilled >= 2, "multi-segment spill forced");
            assert!(
                fs::read_dir(&dir).expect("dir listing").count() >= 2,
                "segment files on disk"
            );
            let mut out = Vec::new();
            // Read in reverse so the 1-segment hot cache must churn.
            for (im, &h) in images.iter().zip(&handles).rev() {
                arena.read_into(h, &mut out);
                assert_eq!(&out, im);
            }
            let stats = arena.spill_stats();
            assert!(stats.segment_reads >= 2, "cold segment reads happened");
            assert!(arena.peak_resident_bytes() > 0);
        }
        assert_eq!(
            fs::read_dir(&dir).expect("dir listing").count(),
            0,
            "drop removes segment files"
        );
        fs::remove_dir(&dir).expect("remove test dir");
    }

    #[test]
    fn hot_cache_serves_repeat_reads() {
        let dir = unique_dir();
        let arena = SpillableArena::new(
            1,
            SpillConfig {
                seg_slots: 2,
                hot_segments: 2,
                disk_dir: Some(dir.clone()),
            },
        );
        for i in 0..6u64 {
            arena.intern128(&[i], hash(&[i]));
        }
        let mut out = Vec::new();
        arena.read_into(0, &mut out);
        arena.read_into(1, &mut out);
        let stats = arena.spill_stats();
        assert_eq!(stats.segment_reads, 1, "same segment loaded once");
        assert_eq!(stats.cache_hits, 1);
        drop(arena);
        fs::remove_dir(&dir).expect("remove test dir");
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn wrong_width_is_rejected() {
        SpillableArena::new(2, SpillConfig::default()).intern128(&[1], (0, 0));
    }
}
