//! Operation statistics for step-complexity and persistence-cost tables.

use crate::word::Pid;

/// Counters of primitive operations executed against a [`crate::SimMemory`].
///
/// Global totals plus per-process breakdowns; the benchmark harness uses these
/// for the step-complexity table (paper Lemmas 1–2 claim wait-freedom with
/// O(N) / O(1) step bounds) and the persist-instruction counts of the
/// shared-cache experiments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total atomic reads.
    pub reads: u64,
    /// Total atomic writes.
    pub writes: u64,
    /// Total CAS attempts (successful or not).
    pub cas_ops: u64,
    /// CAS attempts that failed.
    pub cas_failures: u64,
    /// Explicit persist instructions.
    pub persists: u64,
    /// System-wide crashes simulated.
    pub crashes: u64,
    /// Undo-log checkpoints opened (state-space exploration branch points).
    pub checkpoints: u64,
    /// Undo-log rollbacks performed (branches rewound).
    pub rollbacks: u64,
    per_pid: Vec<PidStats>,
}

/// Per-process operation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PidStats {
    /// Atomic reads by this process.
    pub reads: u64,
    /// Atomic writes by this process.
    pub writes: u64,
    /// CAS attempts by this process.
    pub cas_ops: u64,
    /// Explicit persists by this process.
    pub persists: u64,
}

impl PidStats {
    /// Total primitive operations (reads + writes + CAS + persists).
    pub fn total(&self) -> u64 {
        self.reads + self.writes + self.cas_ops + self.persists
    }
}

impl Stats {
    fn pid_mut(&mut self, pid: Pid) -> &mut PidStats {
        if self.per_pid.len() <= pid.idx() {
            self.per_pid.resize(pid.idx() + 1, PidStats::default());
        }
        &mut self.per_pid[pid.idx()]
    }

    /// The counters attributed to `pid` (zeros if it never ran).
    pub fn for_pid(&self, pid: Pid) -> PidStats {
        self.per_pid.get(pid.idx()).copied().unwrap_or_default()
    }

    /// Total primitive operations across all processes.
    pub fn total_ops(&self) -> u64 {
        self.reads + self.writes + self.cas_ops + self.persists
    }

    pub(crate) fn record_read(&mut self, pid: Pid) {
        self.reads += 1;
        self.pid_mut(pid).reads += 1;
    }

    pub(crate) fn record_write(&mut self, pid: Pid) {
        self.writes += 1;
        self.pid_mut(pid).writes += 1;
    }

    pub(crate) fn record_cas(&mut self, pid: Pid, ok: bool) {
        self.cas_ops += 1;
        if !ok {
            self.cas_failures += 1;
        }
        self.pid_mut(pid).cas_ops += 1;
    }

    pub(crate) fn record_persist(&mut self, pid: Pid) {
        self.persists += 1;
        self.pid_mut(pid).persists += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_pid_attribution() {
        let mut s = Stats::default();
        s.record_read(Pid::new(0));
        s.record_read(Pid::new(2));
        s.record_write(Pid::new(2));
        s.record_cas(Pid::new(2), false);
        s.record_persist(Pid::new(0));
        assert_eq!(s.for_pid(Pid::new(0)).reads, 1);
        assert_eq!(s.for_pid(Pid::new(0)).persists, 1);
        assert_eq!(s.for_pid(Pid::new(1)), PidStats::default());
        assert_eq!(s.for_pid(Pid::new(2)).total(), 3);
        assert_eq!(s.total_ops(), 5);
        assert_eq!(s.cas_failures, 1);
    }

    #[test]
    fn unknown_pid_reads_as_zero() {
        let s = Stats::default();
        assert_eq!(s.for_pid(Pid::new(9)).total(), 0);
    }
}
