//! File-mmap'd NVM backing for real-process crash experiments.
//!
//! Everything else in this crate simulates persistence *inside one process*:
//! [`SimMemory::crash`](crate::SimMemory::crash) decides what survives, so
//! the harness is grading its own crash model. This module moves the NVM
//! half of the model into a file shared between processes, so a `SIGKILL`
//! delivered by a *different* process decides what survives:
//!
//! * [`MappedFile`] — a fixed-size file mapped `MAP_SHARED` into the
//!   address space, exposed as a header plus an array of [`AtomicU64`]
//!   words. Because the mapping is shared, every committed store is visible
//!   to (and survives into) the parent process the instant it retires,
//!   regardless of when the child dies; `msync` only adds power-failure
//!   durability on top.
//! * [`MappedMemory`] — a [`Memory`] implementation over a [`MappedFile`]
//!   that honors the existing [`CacheMode`] / [`CrashPolicy`] semantics
//!   *prospectively*: a SIGKILL cannot run crash code, so the decision the
//!   simulator makes **at** a crash (which dirty cells write back) is made
//!   **ahead of time** as a per-cell write-through discipline. Cached words
//!   live only in this process's heap and genuinely vanish with the
//!   process; persisted words are committed (store + `msync`) at exactly
//!   the points [`SimMemory`](crate::SimMemory) would commit them.
//!
//! The `unsafe` needed for the `mmap` FFI is confined to the private [`sys`]
//! module; the rest of the crate keeps denying unsafe code.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::layout::{Layout, Loc};
use crate::memory::{CacheMode, CrashPolicy, Memory};
use crate::word::{Pid, Word};

/// Magic word identifying a mapped NVM file (first header word).
pub const MAPPED_MAGIC: u64 = 0x4E56_4D4D_4150_0001; // "NVMMAP" + format 1
/// Mapped-file format version (second header word). Version 2 grew the
/// header from 8 to 16 words so the crash fabric's cross-process barrier
/// protocol fits in the [`MappedFile::user`] area (one release word plus
/// one arrival word per worker process) alongside the log sequence counter.
pub const MAPPED_VERSION: u64 = 2;
/// Header words preceding the data array: magic, version, word count,
/// crash count, then [`MappedFile::USER_SLOTS`] free slots for harness use
/// (the process-crash log keeps its global sequence counter and the
/// multi-process barrier words there).
pub const HEADER_WORDS: usize = 16;

/// The raw `mmap`/`munmap`/`msync` bindings. This is the only unsafe code
/// in the crate: it maps a regular file `MAP_SHARED`, hands out
/// `&AtomicU64` views into the (page-aligned, `u64`-aligned) mapping, and
/// unmaps on drop. No other module can name these symbols.
#[allow(unsafe_code)]
mod sys {
    use std::io;

    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const MAP_SHARED: i32 = 0x01;
    pub const MS_SYNC: i32 = 4;
    pub const MS_ASYNC: i32 = 1;

    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
        fn msync(addr: *mut u8, len: usize, flags: i32) -> i32;
    }

    /// Maps `len` bytes of the open file `fd` read/write + `MAP_SHARED`.
    pub fn map_shared(fd: i32, len: usize) -> io::Result<*mut u8> {
        let p = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                fd,
                0,
            )
        };
        if p.is_null() || p as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(p)
    }

    /// Unmaps a region returned by [`map_shared`].
    pub fn unmap(base: *mut u8, len: usize) {
        unsafe {
            munmap(base, len);
        }
    }

    /// Schedules (or forces, with [`MS_SYNC`]) write-back of the mapping to
    /// its file. Irrelevant for SIGKILL survival (the page cache is shared
    /// either way); models the flush a power failure would need.
    pub fn sync(base: *mut u8, len: usize, flags: i32) {
        unsafe {
            msync(base, len, flags);
        }
    }

    /// A `&AtomicU64` view of the word at byte offset `off` in the mapping.
    /// Safe because the mapping is page-aligned (so 8-byte alignment holds),
    /// lives until `unmap`, and all access goes through atomic operations.
    pub fn word_at<'a>(base: *mut u8, off: usize) -> &'a std::sync::atomic::AtomicU64 {
        debug_assert_eq!(off % 8, 0);
        unsafe { &*(base.add(off) as *const std::sync::atomic::AtomicU64) }
    }
}

/// A fixed-size file mapped `MAP_SHARED` as a header plus `words` atomic
/// `u64` cells. Multiple processes mapping the same file see one coherent
/// array; a store committed by one process is durable against that
/// process's death the moment it retires.
pub struct MappedFile {
    base: *mut u8,
    bytes: usize,
    words: usize,
    // Keeps the fd open for the lifetime of the mapping (not strictly
    // required by POSIX, but makes the ownership story obvious).
    _file: std::fs::File,
}

// The mapping is a fixed region of atomics; all mutation goes through
// `&AtomicU64`, so sharing across threads is sound.
#[allow(unsafe_code)]
unsafe impl Send for MappedFile {}
#[allow(unsafe_code)]
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Free header slots available to harness code via [`user`](Self::user).
    pub const USER_SLOTS: usize = HEADER_WORDS - 4;

    /// Creates (truncating if present) a mapped file with `words` zeroed
    /// data words.
    ///
    /// # Errors
    ///
    /// Propagates file-creation / `mmap` failures.
    pub fn create(path: &Path, words: usize) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let bytes = (HEADER_WORDS + words) * 8;
        file.set_len(bytes as u64)?;
        let base = sys::map_shared(Self::raw_fd(&file), bytes)?;
        let mapped = MappedFile {
            base,
            bytes,
            words,
            _file: file,
        };
        mapped.header(0).store(MAPPED_MAGIC, Ordering::SeqCst);
        mapped.header(1).store(MAPPED_VERSION, Ordering::SeqCst);
        mapped.header(2).store(words as u64, Ordering::SeqCst);
        mapped.header(3).store(0, Ordering::SeqCst);
        mapped.sync();
        Ok(mapped)
    }

    /// Maps an existing file created by [`create`](Self::create).
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, too small, or carries the wrong
    /// magic/version words.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)?;
        let bytes = file.metadata()?.len() as usize;
        if bytes < HEADER_WORDS * 8 || !bytes.is_multiple_of(8) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("mapped file too small: {bytes} bytes"),
            ));
        }
        let base = sys::map_shared(Self::raw_fd(&file), bytes)?;
        let mapped = MappedFile {
            base,
            bytes,
            words: bytes / 8 - HEADER_WORDS,
            _file: file,
        };
        let (magic, version) = (
            mapped.header(0).load(Ordering::SeqCst),
            mapped.header(1).load(Ordering::SeqCst),
        );
        if magic != MAPPED_MAGIC || version != MAPPED_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad mapped-file header: magic={magic:#x} version={version}"),
            ));
        }
        let declared = mapped.header(2).load(Ordering::SeqCst) as usize;
        if declared != mapped.words {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "mapped-file word count mismatch: header says {declared}, size says {}",
                    mapped.words
                ),
            ));
        }
        Ok(mapped)
    }

    fn raw_fd(file: &std::fs::File) -> i32 {
        use std::os::unix::io::AsRawFd;
        file.as_raw_fd()
    }

    fn header(&self, k: usize) -> &AtomicU64 {
        debug_assert!(k < HEADER_WORDS);
        sys::word_at(self.base, k * 8)
    }

    /// Number of data words (the header excluded).
    pub fn words(&self) -> usize {
        self.words
    }

    /// The data word at `idx` as an atomic cell.
    pub fn word(&self, idx: usize) -> &AtomicU64 {
        assert!(idx < self.words, "mapped access outside file: {idx}");
        sys::word_at(self.base, (HEADER_WORDS + idx) * 8)
    }

    /// One of the [`USER_SLOTS`](Self::USER_SLOTS) free header words, for
    /// harness protocols. The process-crash harness reserves, on its log
    /// file: slot 0 for the global record sequence counter, slot 1 for the
    /// barrier release round, slot 2 for the recoverer's armed flag, slot
    /// 3 for the parent's mid-operation stall mask, and slots `4 + p` for
    /// worker `p`'s barrier arrival round.
    pub fn user(&self, k: usize) -> &AtomicU64 {
        assert!(k < Self::USER_SLOTS, "user slot out of range: {k}");
        self.header(4 + k)
    }

    /// The crash ordinal recorded in the header: how many times the owning
    /// harness has declared a crash over this file. The analogue of
    /// [`SimMemory::crash_count`](crate::SimMemory::crash_count), and the
    /// seed input for [`CrashPolicy::RandomSubset`] write-through coins.
    pub fn crash_count(&self) -> u64 {
        self.header(3).load(Ordering::SeqCst)
    }

    /// Records one more crash in the header and returns the new count. The
    /// crash-fabric parent calls this once per SIGKILL it lands — worker
    /// kills *and* recovery kills — so every subsequently constructed
    /// [`MappedMemory`] draws its write-through coins for a fresh epoch.
    pub fn bump_crash_count(&self) -> u64 {
        let n = self.header(3).fetch_add(1, Ordering::SeqCst) + 1;
        self.sync();
        n
    }

    /// Forces write-back of the whole mapping to the file (`MS_SYNC`).
    pub fn sync(&self) {
        sys::sync(self.base, self.bytes, sys::MS_SYNC);
    }

    /// Schedules asynchronous write-back of the whole mapping (`MS_ASYNC`)
    /// — the per-commit flush [`MappedMemory`] issues at persist points.
    pub fn sync_async(&self) {
        sys::sync(self.base, self.bytes, sys::MS_ASYNC);
    }

    /// Copies the data words into a fresh vector (for stitch-time
    /// inspection and tests).
    pub fn to_vec(&self) -> Vec<Word> {
        (0..self.words)
            .map(|i| self.word(i).load(Ordering::SeqCst))
            .collect()
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        sys::unmap(self.base, self.bytes);
    }
}

impl fmt::Debug for MappedFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MappedFile")
            .field("words", &self.words)
            .field("crash_count", &self.crash_count())
            .finish()
    }
}

/// Decides, ahead of time, whether writes to cell `idx` write through to
/// the file under `policy` for crash ordinal `epoch`.
///
/// A SIGKILL cannot run the write-back loop [`SimMemory::crash`]
/// (crate::SimMemory::crash) runs, so the dirty-subset decision is made
/// *per cell, before the crash*, and enforced as a write-through
/// discipline: a `persist` coin means every store to the cell is committed
/// as it happens (so the file holds the cell's latest value at the kill,
/// exactly as write-back would leave it); a `drop` coin means stores stay
/// in the volatile overlay (so the file keeps the last explicitly persisted
/// value, exactly as dropping the dirty cell would).
///
/// The coin is deliberately **value-independent**: deciding per *write*
/// rather than per *cell* could commit an intermediate value (write 1
/// through, keep 2 cached, die — the file says 1), a state no
/// [`CrashPolicy`] write-back can produce.
pub fn write_through(policy: CrashPolicy, epoch: u64, idx: u32) -> bool {
    match policy {
        CrashPolicy::DropAll => false,
        CrashPolicy::PersistAll => true,
        CrashPolicy::RandomSubset(seed) => {
            // One xorshift64* draw per (seed, crash ordinal, cell), mixing
            // the cell index with an odd multiplier so adjacent cells get
            // independent coins — the per-cell analogue of the sequential
            // draws in `SimMemory::crash`.
            let mut s = seed
                ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (u64::from(idx) + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93);
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s & 1 == 1
        }
    }
}

/// Multi-thread-capable [`Memory`] over a [`MappedFile`], honoring the
/// simulator's persistence semantics under real crashes.
///
/// * [`CacheMode::PrivateCache`] — every primitive is applied directly to
///   the file, as the paper's presentation model applies primitives
///   directly to NVM. Nothing but in-flight machine state dies with the
///   process.
/// * [`CacheMode::SharedCache`] — primitives land in a volatile overlay
///   (this process's heap, genuinely lost on SIGKILL); each cell
///   additionally writes through to the file iff its [`write_through`]
///   coin says it would have been written back at the next crash.
///   [`Memory::persist`] commits the cell unconditionally and drops it
///   from the overlay, exactly like the simulator.
///
/// All file stores are `SeqCst`, matching [`AtomicMemory`]
/// (crate::AtomicMemory); overlay access is serialized by a mutex, which
/// also gives SharedCache `cas` its atomicity.
#[derive(Debug)]
pub struct MappedMemory {
    layout: Arc<Layout>,
    file: MappedFile,
    mode: CacheMode,
    policy: CrashPolicy,
    epoch: u64,
    cache: Mutex<BTreeMap<u32, Word>>,
}

impl MappedMemory {
    /// Wraps `file` (created with exactly `layout.total_words()` data
    /// words) in the given persistence model. The write-through epoch is
    /// the file's next crash ordinal, so coins line up with the crash the
    /// parent will declare.
    pub fn new(layout: Layout, file: MappedFile, mode: CacheMode, policy: CrashPolicy) -> Self {
        assert_eq!(
            file.words(),
            layout.total_words(),
            "mapped file does not span the layout"
        );
        let epoch = file.crash_count() + 1;
        MappedMemory {
            layout: Arc::new(layout),
            file,
            mode,
            policy,
            epoch,
            cache: Mutex::new(BTreeMap::new()),
        }
    }

    /// The underlying mapped file.
    pub fn file(&self) -> &MappedFile {
        &self.file
    }

    fn check_access(&self, pid: Pid, loc: Loc) {
        if let Some(owner) = self.layout.owner_of(loc) {
            assert_eq!(
                owner, pid,
                "model violation: {pid} accessed private cell {loc} owned by {owner}"
            );
        }
        assert!(
            loc.index() < self.layout.total_words(),
            "access outside layout: {loc}"
        );
    }

    fn commit(&self, idx: usize, val: Word) {
        self.file.word(idx).store(val, Ordering::SeqCst);
        self.file.sync_async();
    }
}

impl Memory for MappedMemory {
    fn read(&self, pid: Pid, loc: Loc) -> Word {
        self.check_access(pid, loc);
        match self.mode {
            CacheMode::PrivateCache => self.file.word(loc.index()).load(Ordering::SeqCst),
            CacheMode::SharedCache => {
                let cache = self.cache.lock().expect("cache mutex");
                match cache.get(&(loc.index() as u32)) {
                    Some(&w) => w,
                    None => self.file.word(loc.index()).load(Ordering::SeqCst),
                }
            }
        }
    }

    fn write(&self, pid: Pid, loc: Loc, val: Word) {
        self.check_access(pid, loc);
        match self.mode {
            CacheMode::PrivateCache => self.commit(loc.index(), val),
            CacheMode::SharedCache => {
                let idx = loc.index() as u32;
                let mut cache = self.cache.lock().expect("cache mutex");
                cache.insert(idx, val);
                if write_through(self.policy, self.epoch, idx) {
                    self.commit(loc.index(), val);
                }
            }
        }
    }

    fn cas(&self, pid: Pid, loc: Loc, old: Word, new: Word) -> bool {
        self.check_access(pid, loc);
        match self.mode {
            CacheMode::PrivateCache => {
                let ok = self
                    .file
                    .word(loc.index())
                    .compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok();
                if ok {
                    self.file.sync_async();
                }
                ok
            }
            CacheMode::SharedCache => {
                let idx = loc.index() as u32;
                let mut cache = self.cache.lock().expect("cache mutex");
                let cur = match cache.get(&idx) {
                    Some(&w) => w,
                    None => self.file.word(loc.index()).load(Ordering::SeqCst),
                };
                if cur != old {
                    return false;
                }
                cache.insert(idx, new);
                if write_through(self.policy, self.epoch, idx) {
                    self.commit(loc.index(), new);
                }
                true
            }
        }
    }

    fn persist(&self, pid: Pid, loc: Loc) {
        self.check_access(pid, loc);
        if self.mode == CacheMode::SharedCache {
            let idx = loc.index() as u32;
            let mut cache = self.cache.lock().expect("cache mutex");
            if let Some(w) = cache.remove(&idx) {
                self.commit(loc.index(), w);
            }
        }
    }

    fn layout(&self) -> &Layout {
        &self.layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutBuilder;
    use crate::memory::SimMemory;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicUsize;

    static TEST_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn temp_path(tag: &str) -> PathBuf {
        let n = TEST_SEQ.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!(
            "nvm-mapped-{}-{}-{}.bin",
            std::process::id(),
            tag,
            n
        ))
    }

    fn layout() -> (crate::layout::Layout, Loc) {
        let mut b = LayoutBuilder::new();
        let x = b.shared("X", 6, 64);
        (b.finish(), x)
    }

    #[test]
    fn create_open_roundtrip() {
        let path = temp_path("roundtrip");
        {
            let f = MappedFile::create(&path, 4).unwrap();
            f.word(2).store(77, Ordering::SeqCst);
            f.user(0).store(5, Ordering::SeqCst);
            assert_eq!(f.crash_count(), 0);
            assert_eq!(f.bump_crash_count(), 1);
        }
        let f = MappedFile::open(&path).unwrap();
        assert_eq!(f.words(), 4);
        assert_eq!(f.word(2).load(Ordering::SeqCst), 77);
        assert_eq!(f.user(0).load(Ordering::SeqCst), 5);
        assert_eq!(f.crash_count(), 1);
        drop(f);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn header_has_room_for_the_fabric_barrier() {
        // The crash fabric needs seq + release + armed + stall mask + one
        // arrival word per worker; 12 user slots cover up to 8 worker
        // processes, beyond what the 64-op checker window admits.
        assert_eq!(MappedFile::USER_SLOTS, 12);
        let path = temp_path("userslots");
        let f = MappedFile::create(&path, 1).unwrap();
        for k in 0..MappedFile::USER_SLOTS {
            f.user(k).store(k as u64 + 1, Ordering::SeqCst);
        }
        for k in 0..MappedFile::USER_SLOTS {
            assert_eq!(f.user(k).load(Ordering::SeqCst), k as u64 + 1);
        }
        assert_eq!(f.word(0).load(Ordering::SeqCst), 0, "data must not alias");
        drop(f);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_rejects_garbage() {
        let path = temp_path("garbage");
        std::fs::write(&path, vec![0u8; 256]).unwrap();
        assert!(MappedFile::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    /// A tiny shadow of the simulator's cache/NVM split, so the tests can
    /// state "a state `SimMemory::crash(policy)` could have produced"
    /// without reaching into private fields.
    struct Shadow {
        nvm: Vec<Word>,
        cache: BTreeMap<u32, Word>,
        mode: CacheMode,
    }

    impl Shadow {
        fn new(words: usize, mode: CacheMode) -> Self {
            Shadow {
                nvm: vec![0; words],
                cache: BTreeMap::new(),
                mode,
            }
        }
        fn logical(&self, i: usize) -> Word {
            self.cache.get(&(i as u32)).copied().unwrap_or(self.nvm[i])
        }
        fn write(&mut self, i: usize, w: Word) {
            match self.mode {
                CacheMode::PrivateCache => self.nvm[i] = w,
                CacheMode::SharedCache => {
                    self.cache.insert(i as u32, w);
                }
            }
        }
        fn persist(&mut self, i: usize) {
            if let Some(w) = self.cache.remove(&(i as u32)) {
                self.nvm[i] = w;
            }
        }
    }

    /// Runs the same mixed write/cas/persist script against a
    /// [`MappedMemory`], a twin [`SimMemory`], and the shadow model.
    fn run_script(mapped: &MappedMemory, twin: &SimMemory, shadow: &mut Shadow) {
        let p = Pid::new(0);
        let (_, x) = layout();
        let mut rng: u64 = 0x5EED_1234;
        let mut next = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for step in 0..200 {
            let i = (next() % 6) as usize;
            let loc = x.at(i);
            match next() % 4 {
                0 | 1 => {
                    let v = next() % 1000;
                    mapped.write(p, loc, v);
                    twin.write(p, loc, v);
                    shadow.write(i, v);
                }
                2 => {
                    let old = shadow.logical(i);
                    let v = next() % 1000;
                    let a = mapped.cas(p, loc, old, v);
                    let b = twin.cas(p, loc, old, v);
                    assert_eq!(a, b, "cas outcomes diverge at step {step}");
                    if a {
                        shadow.write(i, v);
                    }
                }
                _ => {
                    mapped.persist(p, loc);
                    twin.persist(p, loc);
                    shadow.persist(i);
                }
            }
            assert_eq!(
                mapped.read(p, loc),
                twin.read(p, loc),
                "logical views diverge at step {step}"
            );
        }
    }

    /// Satellite contract: after a (simulated-SIGKILL) drop of the
    /// `MappedMemory` and a remap, the file holds word-for-word a state
    /// `SimMemory::crash(policy)` could have produced, for every
    /// `CacheMode` × `CrashPolicy` combination. For the deterministic
    /// policies the state is unique, so the comparison is exact equality
    /// against the twin; for `RandomSubset` the simulator's subset depends
    /// on its own draw sequence, so the test checks membership in the
    /// policy's reachable set: every clean cell equals the pre-crash NVM
    /// word, and every dirty cell holds either its NVM word (dropped) or
    /// its cached word (written back).
    #[test]
    fn sigkill_state_matches_simulated_crash() {
        let policies = [
            CrashPolicy::DropAll,
            CrashPolicy::PersistAll,
            CrashPolicy::RandomSubset(0xDEAD_BEEF),
        ];
        for mode in [CacheMode::PrivateCache, CacheMode::SharedCache] {
            for policy in policies {
                let path = temp_path("crashpair");
                let (lay, _) = layout();
                let words = lay.total_words();
                let file = MappedFile::create(&path, words).unwrap();
                let mapped = MappedMemory::new(lay, file, mode, policy);
                let (lay2, _) = layout();
                let twin = SimMemory::with_mode(lay2, mode);
                let mut shadow = Shadow::new(words, mode);
                run_script(&mapped, &twin, &mut shadow);

                // SIGKILL: the overlay (volatile heap) dies with the
                // process; only the file survives.
                drop(mapped);
                let survivor = MappedFile::open(&path).unwrap();
                twin.crash(policy);

                match policy {
                    CrashPolicy::DropAll | CrashPolicy::PersistAll => {
                        for i in 0..words {
                            assert_eq!(
                                survivor.word(i).load(Ordering::SeqCst),
                                twin.peek(Loc(i as u32)),
                                "cell {i} diverges from the simulated crash \
                                 ({mode:?}, {policy:?})"
                            );
                        }
                    }
                    CrashPolicy::RandomSubset(_) => {
                        for i in 0..words {
                            let got = survivor.word(i).load(Ordering::SeqCst);
                            let dirty = shadow.cache.contains_key(&(i as u32));
                            if dirty {
                                assert!(
                                    got == shadow.nvm[i] || got == shadow.logical(i),
                                    "dirty cell {i} holds {got}, reachable values are \
                                     {} (dropped) / {} (written back)",
                                    shadow.nvm[i],
                                    shadow.logical(i)
                                );
                            } else {
                                assert_eq!(
                                    got, shadow.nvm[i],
                                    "clean cell {i} must ride through the crash"
                                );
                            }
                        }
                    }
                }
                drop(survivor);
                let _ = std::fs::remove_file(&path);
            }
        }
    }

    #[test]
    fn private_cache_commits_every_store() {
        let path = temp_path("private");
        let (lay, x) = layout();
        let file = MappedFile::create(&path, lay.total_words()).unwrap();
        let mapped = MappedMemory::new(lay, file, CacheMode::PrivateCache, CrashPolicy::DropAll);
        let p = Pid::new(0);
        mapped.write(p, x, 9);
        assert!(mapped.cas(p, x.at(1), 0, 4));
        drop(mapped); // SIGKILL
        let survivor = MappedFile::open(&path).unwrap();
        assert_eq!(survivor.word(0).load(Ordering::SeqCst), 9);
        assert_eq!(survivor.word(1).load(Ordering::SeqCst), 4);
        drop(survivor);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shared_cache_drop_all_loses_unpersisted() {
        let path = temp_path("droppy");
        let (lay, x) = layout();
        let file = MappedFile::create(&path, lay.total_words()).unwrap();
        let mapped = MappedMemory::new(lay, file, CacheMode::SharedCache, CrashPolicy::DropAll);
        let p = Pid::new(0);
        mapped.write(p, x, 7); // dirty: must die with the process
        mapped.write(p, x.at(1), 8);
        mapped.persist(p, x.at(1)); // explicitly persisted: must survive
        assert_eq!(mapped.read(p, x), 7, "visible before the crash");
        drop(mapped); // SIGKILL
        let survivor = MappedFile::open(&path).unwrap();
        assert_eq!(survivor.word(0).load(Ordering::SeqCst), 0);
        assert_eq!(survivor.word(1).load(Ordering::SeqCst), 8);
        drop(survivor);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn write_through_coin_is_value_independent_and_deterministic() {
        for idx in 0..64u32 {
            assert!(!write_through(CrashPolicy::DropAll, 1, idx));
            assert!(write_through(CrashPolicy::PersistAll, 1, idx));
            let a = write_through(CrashPolicy::RandomSubset(42), 1, idx);
            let b = write_through(CrashPolicy::RandomSubset(42), 1, idx);
            assert_eq!(a, b);
        }
        // Different epochs draw different subsets (with overwhelming
        // probability over 64 cells).
        let e1: Vec<bool> = (0..64)
            .map(|i| write_through(CrashPolicy::RandomSubset(42), 1, i))
            .collect();
        let e2: Vec<bool> = (0..64)
            .map(|i| write_through(CrashPolicy::RandomSubset(42), 2, i))
            .collect();
        assert_ne!(e1, e2);
    }

    #[test]
    fn mapped_backed_sim_memory_persists_into_the_file() {
        let path = temp_path("simback");
        let (lay, x) = layout();
        let file = MappedFile::create(&path, lay.total_words()).unwrap();
        let (lay2, _) = layout();
        let mem = SimMemory::with_backing(lay2, CacheMode::PrivateCache, file);
        let p = Pid::new(0);
        mem.write(p, x, 31);
        assert_eq!(mem.read(p, x), 31);
        drop(mem);
        let survivor = MappedFile::open(&path).unwrap();
        assert_eq!(survivor.word(0).load(Ordering::SeqCst), 31);
        drop(survivor);
        let _ = std::fs::remove_file(&path);
    }
}
