//! Simulated non-volatile main memory (NVM) substrate for recoverable and
//! detectable concurrent objects.
//!
//! This crate implements the system model of Ben-Baruch, Hendler and
//! Rusanovsky, *Upper and Lower Bounds on the Space Complexity of Detectable
//! Objects* (PODC 2020), Section 2:
//!
//! * a flat word-addressed memory split into **shared** and **per-process
//!   private** non-volatile regions ([`layout`]),
//! * atomic `read` / `write` / `CAS` primitive operations ([`Memory`]),
//! * both persistence models discussed by the paper: the **private-cache
//!   model**, where primitives are applied directly to NVM, and the
//!   **shared-cache model**, where writes land in a volatile cache and must be
//!   persisted explicitly ([`CacheMode`], [`Memory::persist`]),
//! * **system-wide crash-failures** that reset all volatile state while
//!   preserving NVM ([`SimMemory::crash`]),
//! * the per-process announcement structure `Ann_p = {op, resp, CP}` used to
//!   pass auxiliary state to recoverable operations ([`ann`]), and
//! * a **step-machine** execution framework ([`machine`]) in which every
//!   algorithm is compiled to a line-level state machine executing one
//!   primitive operation per step, so a crash can be injected between any two
//!   lines of pseudo-code.
//!
//! Two interchangeable memory back-ends are provided:
//!
//! * [`SimMemory`] — deterministic, single-threaded, snapshot/restore capable;
//!   used by the randomized simulator, the exhaustive explorer and the
//!   reachable-configuration census.
//! * [`AtomicMemory`] — `AtomicU64`-backed, sequentially consistent; used by
//!   the multi-threaded throughput benchmarks.
//!
//! A third backing, [`MappedMemory`] (and the [`MappedFile`] it maps), puts
//! the NVM half of the model in a `MAP_SHARED` file so a *real* `SIGKILL`
//! decides what survives a crash; [`SimMemory::with_backing`] runs the
//! deterministic engine over the same file for parent-side recovery. See
//! [`mapped`].
//!
//! # Example
//!
//! ```
//! use nvm::{LayoutBuilder, Memory, Pid, SimMemory};
//!
//! let mut b = LayoutBuilder::new();
//! let r = b.shared("R", 1, 64);
//! let layout = b.finish();
//! let mem = SimMemory::new(layout);
//!
//! let p = Pid::new(0);
//! mem.write(p, r, 42);
//! assert_eq!(mem.read(p, r), 42);
//! assert!(mem.cas(p, r, 42, 43));
//! assert_eq!(mem.read(p, r), 43);
//! ```

// `deny` (not `forbid`) so the one FFI module of [`mapped`] — the `mmap`
// bindings behind `MappedFile` — can opt in with a scoped `allow`; every
// other module still refuses unsafe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ann;
pub mod arena;
pub mod external;
pub mod layout;
pub mod machine;
pub mod mapped;
pub mod memory;
pub mod stats;
pub mod word;

pub use ann::AnnBank;
pub use arena::{CompactState, InternStage, StateArena};
pub use external::{SpillArenaStats, SpillConfig, SpillableArena};
pub use layout::{Layout, LayoutBuilder, Loc, Region, Space};
pub use machine::{run_to_completion, Machine, Poll, StepLimitError};
pub use mapped::{write_through, MappedFile, MappedMemory};
pub use memory::{
    AtomicMemory, CacheMode, Checkpoint, CrashPolicy, MemSnapshot, Memory, SimMemory,
};
pub use stats::Stats;
pub use word::{Field, FieldBuilder, Pid, Word, ACK, FALSE, RESP_FAIL, RESP_NONE, TRUE};
